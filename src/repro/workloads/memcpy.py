"""The Table II memory-copy bandwidth benchmark.

Copies data between two GPU memory regions with memory tiling (copy
operations interleaved across warps to fully utilise bandwidth), with
per-thread 4-byte or 8-byte accesses, in a raw-pointer baseline and an
apointer version.  Reported as achieved bandwidth against the device's
``cudaMemcpyDeviceToDevice`` figure (152 GB/s on the paper's K80).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import APConfig, AVM
from repro.gpu import Device
from repro.gpu.kernel import WarpContext


@dataclass
class MemcpyResult:
    """Outcome of one memory-copy run."""

    width: int
    use_apointers: bool
    cycles: float
    bytes_copied: int
    bandwidth: float            # copied bytes / second (payload, one way)
    fraction_of_peak: float
    verified: bool


def run_memcpy(device: Device, *, use_apointers: bool, width: int = 4,
               nblocks: int = 52, warps_per_block: int = 32,
               iters_per_thread: int = 8,
               config: Optional[APConfig] = None,
               perm_checks: bool = False,
               compute_per_iter: float = 0.0,
               seed: int = 99) -> MemcpyResult:
    """Copy ``nblocks * warps * 32 * iters`` elements of ``width`` bytes.

    Each warp copies its own contiguous chunk, advancing by one
    coalesced 128/256-byte warp-line per iteration — the paper's layout
    ("each warp copies 1 MB using 4-byte or 8-byte reads/writes per
    thread"), where the pointer crosses a page every ``4096 / line``
    iterations.

    ``compute_per_iter`` adds that many dependent arithmetic
    instructions per copied element — the arithmetic-intensity knob of
    Figure 6 / §VI-A, used to measure the free-computation bubble
    closing as per-access compute rises.
    """
    if width not in (4, 8):
        raise ValueError("width must be 4 or 8 bytes (Table II)")
    elems = width // 4
    threads = nblocks * warps_per_block * 32
    total_floats = threads * iters_per_thread * elems
    nbytes = total_floats * 4
    rng = np.random.RandomState(seed)
    data = rng.uniform(-1, 1, total_floats).astype(np.float32)

    src = device.alloc(nbytes)
    dst = device.alloc(nbytes)
    device.memory.write(src, data)
    if config is None:
        config = APConfig(perm_checks=perm_checks)
    avm = AVM(config)
    line = 32 * width                    # one warp-iteration's bytes
    chunk = iters_per_thread * line      # one warp's chunk

    def kernel(ctx: WarpContext):
        base = ctx.warp_id * chunk + ctx.lane * width
        if use_apointers:
            sp = avm.gvmmap_device(ctx, src, nbytes)
            dp = avm.gvmmap_device(ctx, dst, nbytes, write=True)
            yield from sp.seek(ctx, base)
            yield from dp.seek(ctx, base)
        for i in range(iters_per_thread):
            if use_apointers:
                if elems == 1:
                    v = yield from sp.read(ctx, "f4")
                    if compute_per_iter:
                        yield from ctx.compute(compute_per_iter,
                                               chain=compute_per_iter)
                    yield from dp.write(ctx, v, "f4")
                else:
                    v = yield from sp.read_wide(ctx, 2, "f4")
                    if compute_per_iter:
                        yield from ctx.compute(compute_per_iter,
                                               chain=compute_per_iter)
                    yield from dp.write_wide(ctx, v, "f4")
                yield from sp.add(ctx, line)
                yield from dp.add(ctx, line)
            else:
                addr = src + base + i * line
                ctx.charge(3, chain=3)
                if elems == 1:
                    v = yield from ctx.load(addr, "f4")
                    if compute_per_iter:
                        yield from ctx.compute(compute_per_iter,
                                               chain=compute_per_iter)
                    ctx.charge(2)
                    yield from ctx.store(dst + base + i * line, v, "f4")
                else:
                    v = yield from ctx.load_wide(addr, "f4", 2)
                    if compute_per_iter:
                        yield from ctx.compute(compute_per_iter,
                                               chain=compute_per_iter)
                    ctx.charge(2)
                    yield from ctx.store_wide(dst + base + i * line,
                                              v, "f4")
        if use_apointers:
            yield from sp.destroy(ctx)
            yield from dp.destroy(ctx)

    result = device.launch(kernel, grid=nblocks,
                           block_threads=warps_per_block * 32)
    copied = device.memory.read(dst, nbytes).view(np.float32)
    verified = bool(np.array_equal(copied, data))
    # Bandwidth follows the cudaMemcpy D2D convention the paper compares
    # against: total DRAM traffic (read + write) per second.
    bandwidth = result.stats.dram_bandwidth(device.spec)
    return MemcpyResult(
        width=width,
        use_apointers=use_apointers,
        cycles=result.cycles,
        bytes_copied=nbytes,
        bandwidth=bandwidth,
        fraction_of_peak=bandwidth / device.spec.dram_bandwidth_achievable,
        verified=verified,
    )
