"""The eight §VI-B workloads, in order of increasing compute intensity.

All compute really happens on the loaded values (results are verified
against numpy references), and its cost is charged to the simulated GPU:
plain per-lane arithmetic via ``ctx.charge``, warp-level communication
via the (cost-charging) shuffle intrinsics on the context.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload

_LCG_A = np.float64(1664525.0)
_LCG_C = np.float64(1013904223.0)
_LCG_M = np.float64(2 ** 24)


class ReadWorkload(Workload):
    """Performs a simple read of a large vector (sum to keep it live)."""

    name = "Read"
    compute_rank = 1.0

    def consume(self, ctx, values, acc):
        ctx.charge(1, chain=1)
        return acc + values

    def expected(self, data):
        return data.sum(axis=(0, 2))


class AddWorkload(Workload):
    """Element-wise addition of two large vectors.

    The second operand is derived in-register (value + 1), preserving the
    paper's 1-add-per-element compute intensity with a single stream.
    """

    name = "Add"
    compute_rank = 2.0

    def consume(self, ctx, values, acc):
        ctx.charge(2, chain=2)
        return acc + (values + (values + 1.0))

    def expected(self, data):
        return (2 * data + 1).sum(axis=(0, 2))


class RandomWorkload(Workload):
    """Pseudo-random generation seeded by each element (LCG rounds).

    ``iterations`` scales the compute per memory read, giving the
    Random-5 / Random-10 / Random-50 series of Figure 6.
    """

    compute_rank = 10.0

    def __init__(self, iterations: int):
        self.iterations = iterations
        self.name = f"Random {iterations}"
        self.compute_rank = 4.0 * iterations

    @staticmethod
    def _lcg_rounds(x: np.ndarray, rounds: int) -> np.ndarray:
        x = np.floor(x * 997.0) % _LCG_M
        for _ in range(rounds):
            x = (_LCG_A * x + _LCG_C) % _LCG_M
        return x / _LCG_M

    def consume(self, ctx, values, acc):
        # 4 dependent instructions per LCG round (mul, add, and, shift).
        ctx.charge(4 * self.iterations, chain=4 * self.iterations)
        return acc + self._lcg_rounds(values, self.iterations)

    def expected(self, data):
        return self._lcg_rounds(data.astype(np.float64),
                                self.iterations).sum(axis=(0, 2))


class ReduceWorkload(Workload):
    """Warp-level sum reduction via shuffles; lane 0 holds the total.

    Matches the paper: "each warp reads a 32-element vector and performs
    reduction by summing up the values using warp-level shuffle
    instructions".
    """

    name = "Reduce"
    compute_rank = 12.0

    def consume(self, ctx, values, acc):
        v = values.copy()
        for shift in (16, 8, 4, 2, 1):
            v = v + ctx.shfl_xor(v, shift)
            ctx.charge(1, chain=1)  # the add paired with each shuffle
        return acc + v

    def expected(self, data):
        iters, threads, fpl = data.shape
        warps = data.reshape(iters, threads // 32, 32, fpl)
        sums = warps.sum(axis=2, keepdims=True)
        return np.broadcast_to(sums, warps.shape).reshape(
            iters, threads, fpl).sum(axis=(0, 2))


class FFTWorkload(Workload):
    """32-point FFT per warp using warp shuffles.

    A radix-2 Stockham-style butterfly network: 5 stages, each a shuffle
    exchange plus a complex multiply-add against coefficients held in
    constant memory.  The accumulator keeps the magnitude of each lane's
    output bin.

    The paper finds this workload's apointer overhead anomalously high
    and attributes it to compiler code-generation differences *unrelated*
    to the apointer accesses (reordered coefficient loads); that artifact
    is modelled by ``apointer_artifact_instrs`` and called out in
    EXPERIMENTS.md.
    """

    name = "FFT"
    compute_rank = 14.0
    apointer_artifact_instrs = 90.0
    #: Per-stage butterfly cost: complex twiddle multiply plus
    #: add/sub - 10 dependent arithmetic instructions.
    twiddle_instrs = 10

    def consume(self, ctx, values, acc):
        n = values.size
        re = values.astype(np.float64).copy()
        im = np.zeros_like(re)
        lane = np.arange(n)
        # Bit-reverse the input order (free: it is an addressing choice).
        rev = np.array([int(f"{i:05b}"[::-1], 2) for i in range(n)])
        re, im = re[rev], im[rev]
        for stage in range(5):
            half = 1 << stage
            # Butterfly partner exchange via shfl_xor.
            pre = ctx.shfl_xor(re, half)
            pim = ctx.shfl_xor(im, half)
            upper = (lane & half) != 0
            k = (lane & (half - 1)) * (16 >> stage)
            ang = -2.0 * np.pi * k / 32.0
            wr, wi = np.cos(ang), np.sin(ang)
            ctx.charge(self.twiddle_instrs, chain=self.twiddle_instrs)
            tr = np.where(upper, re, pre)
            ti = np.where(upper, im, pim)
            br = np.where(upper, pre, re)
            bi = np.where(upper, pim, im)
            xr = tr * wr - ti * wi
            xi = tr * wi + ti * wr
            re = np.where(upper, br - xr, br + xr)
            im = np.where(upper, bi - xi, bi + xi)
        ctx.charge(3, chain=3)
        return acc + np.sqrt(re * re + im * im)

    def expected(self, data):
        iters, threads, fpl = data.shape
        out = np.zeros(threads, dtype=np.float64)
        for i in range(iters):
            for j in range(fpl):
                rows = data[i, :, j].reshape(-1, 32)
                spec = np.fft.fft(rows, axis=1)
                out += np.abs(spec).reshape(-1)
        return out


class BitonicSortWorkload(Workload):
    """Bitonic sort of each warp's 32-element vector via shuffles."""

    name = "Bitonic sort"
    compute_rank = 20.0

    def consume(self, ctx, values, acc):
        v = values.copy()
        lane = np.arange(v.size)
        for k in range(1, 6):                  # merge size 2^k
            for j in range(k - 1, -1, -1):     # exchange distance 2^j
                partner = ctx.shfl_xor(v, 1 << j)
                ascending = (lane & (1 << k)) == 0
                keep_min = ((lane & (1 << j)) == 0) == ascending
                ctx.charge(3, chain=3)         # compare + two selects
                v = np.where(keep_min, np.minimum(v, partner),
                             np.maximum(v, partner))
        ctx.charge(1, chain=1)
        return acc + v

    def expected(self, data):
        iters, threads, fpl = data.shape
        out = np.zeros(threads, dtype=np.float64)
        for i in range(iters):
            for j in range(fpl):
                rows = np.sort(data[i, :, j].reshape(-1, 32), axis=1)
                out += rows.reshape(-1)
        return out


#: The Figure 6 suite, sorted by increasing compute intensity.
WORKLOADS: list[Workload] = sorted(
    [
        AddWorkload(),
        ReadWorkload(),
        RandomWorkload(5),
        RandomWorkload(10),
        ReduceWorkload(),
        FFTWorkload(),
        RandomWorkload(50),
        BitonicSortWorkload(),
    ],
    key=lambda w: w.compute_rank,
)


def workload_by_name(name: str) -> Workload:
    for w in WORKLOADS:
        if w.name == name:
            return w
    raise KeyError(f"unknown workload {name!r}")
