"""Baseline ratchet + SARIF export: identity, round-trip, CLI modes."""

import json
import subprocess
import sys

from repro.analysis import baseline, sarif
from repro.analysis.model import Finding


def finding(rule="shared-race", path="src/x.py", line=10, col=4,
            function="kernel", message="something racy"):
    return Finding(rule=rule, path=path, line=line, col=col,
                   function=function, message=message)


class TestFingerprint:
    def test_line_and_column_independent(self):
        # The whole point of the ratchet: edits above a finding must
        # not churn its identity.
        a = finding(line=10, col=4)
        b = finding(line=99, col=0)
        assert baseline.fingerprint(a) == baseline.fingerprint(b)

    def test_sensitive_to_rule_path_function_message(self):
        base = baseline.fingerprint(finding())
        assert baseline.fingerprint(finding(rule="lock-order")) != base
        assert baseline.fingerprint(finding(path="src/y.py")) != base
        assert baseline.fingerprint(finding(function="other")) != base
        assert baseline.fingerprint(finding(message="else")) != base

    def test_stable_format(self):
        fp = baseline.fingerprint(finding())
        assert len(fp) == 16
        assert int(fp, 16) >= 0


class TestRoundTrip:
    def test_write_load_compare(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        old = [finding(), finding(rule="lock-order", message="inv")]
        baseline.write(path, old)

        doc = json.loads((tmp_path / "baseline.json").read_text())
        assert doc["version"] == baseline.VERSION
        assert len(doc["findings"]) == 2

        entries = baseline.load(path)
        # Same findings: nothing new, nothing stale.
        new, stale = baseline.compare(old, entries)
        assert new == [] and stale == {}

        # One fixed, one introduced.
        now = [finding(), finding(rule="divergent-yield",
                                  message="fresh bug")]
        new, stale = baseline.compare(now, entries)
        assert [f.rule for f in new] == ["divergent-yield"]
        assert len(stale) == 1
        [entry] = stale.values()
        assert entry["rule"] == "lock-order"

    def test_duplicate_findings_fold(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        baseline.write(path, [finding(line=1), finding(line=2)])
        assert len(baseline.load(path)) == 1

    def test_missing_or_corrupt_file_loads_empty(self, tmp_path):
        assert baseline.load(str(tmp_path / "absent.json")) == {}
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert baseline.load(str(bad)) == {}


class TestSarif:
    def test_document_shape(self):
        findings = [finding(),
                    finding(rule="parse-error", function="",
                            message="syntax error", line=0)]
        doc = sarif.to_sarif(findings, errors=[("src/x.py", "boom")])
        assert doc["version"] == "2.1.0"
        [run] = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {r["id"] for r in driver["rules"]}
        assert {"shared-race", "lock-order", "barrier-divergence",
                "parse-error"} <= rule_ids
        [note] = run["invocations"][0]["toolExecutionNotifications"]
        assert note["message"]["text"] == "boom"

    def test_columns_are_one_based_and_lines_clamped(self):
        doc = sarif.to_sarif([finding(line=0, col=0)])
        [result] = doc["runs"][0]["results"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 1      # SARIF forbids line 0
        assert region["startColumn"] == 1    # 0-based AST col + 1

    def test_fingerprint_matches_baseline_identity(self):
        f = finding()
        doc = sarif.to_sarif([f])
        [result] = doc["runs"][0]["results"]
        assert result["partialFingerprints"]["reproLint/v1"] \
            == baseline.fingerprint(f)

    def test_severity_split(self):
        doc = sarif.to_sarif([finding(), finding(rule="parse-error")])
        levels = {r["ruleId"]: r["level"]
                  for r in doc["runs"][0]["results"]}
        assert levels["parse-error"] == "error"
        assert levels["shared-race"] == "warning"


class TestCLIBaselineModes:
    def _run(self, *argv, cwd=None):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv],
            capture_output=True, text=True, cwd=cwd)

    BUGGY = ("def kernel(ctx, a):\n"
             "    ctx.load(a, 'f4')\n"
             "    yield from ctx.fence()\n")

    def test_update_then_check_then_ratchet(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(self.BUGGY)
        bl = tmp_path / "bl.json"

        # Baseline the existing debt: exit 0.
        proc = self._run(str(src), "--update-baseline",
                         "--baseline", str(bl))
        assert proc.returncode == 0, proc.stderr
        assert "1 finding(s)" in proc.stderr

        # Same debt, baseline applied: clean exit, nothing shown.
        proc = self._run(str(src), "--baseline", str(bl),
                         "--format=json")
        assert proc.returncode == 0
        doc = json.loads(proc.stdout)
        assert doc["findings"] == []
        assert doc["baselined"] == 1

        # New debt on top: only the new finding fails the run.
        src.write_text(self.BUGGY +
                       "def kernel2(ctx, a):\n"
                       "    ctx.store(a, 0, 'f4')\n"
                       "    yield from ctx.fence()\n")
        proc = self._run(str(src), "--baseline", str(bl),
                         "--format=json")
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert [f["function"] for f in doc["findings"]] == ["kernel2"]
        assert doc["baselined"] == 1

        # Fixed-but-not-removed debt: warn (stale), still exit 0.
        src.write_text("def kernel(ctx, a):\n"
                       "    v = yield from ctx.load(a, 'f4')\n")
        proc = self._run(str(src), "--baseline", str(bl))
        assert proc.returncode == 0
        assert "no longer matches any finding" in proc.stderr

    def test_sarif_file_is_written(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(self.BUGGY)
        out = tmp_path / "lint.sarif"
        proc = self._run(str(src), "--sarif", str(out))
        assert proc.returncode == 1      # finding still fails the run
        doc = json.loads(out.read_text())
        assert doc["runs"][0]["results"][0]["ruleId"] \
            == "missing-yield-from"

    def test_effects_conflicts_with_no_interprocedural(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("def kernel(ctx, n):\n"
                       "    yield from ctx.sleep(n)\n")
        proc = self._run(str(src), "--no-interprocedural",
                         "--effects", "-")
        assert proc.returncode == 2
