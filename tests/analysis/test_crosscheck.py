"""Static/dynamic cross-check: sanitizer hits fall inside may-sets.

The effect inference is a *may*-analysis: anything the runtime
sanitizer can observe during a tier-1 run must already be inside the
static summary of the kernel that did it.  Each test here launches a
seeded kernel from the sanitizer corpus - built by ``exec`` of the
SAME source string the linter analyzes, so the two views cannot
drift - and asserts that every runtime Violation maps to a static
fact that predicted it:

* ``lockstep``      -> a divergent barrier interval (min != max) and
                       a ``barrier-divergence`` finding;
* ``pin-leak``      -> ``pin_delta_max > 0`` at kernel exit;
* ``torn-write``    -> the written structure is in the summary's
                       ``writes`` may-set.
"""

import textwrap

import numpy as np

from repro.analysis.effects import EffectProgram
from repro.analysis.linter import lint_source

from .test_sanitizer import PAGE, make_env


def statics(source: str):
    """(summary, findings) for the single kernel in ``source``."""
    source = textwrap.dedent(source)
    prog = EffectProgram.from_sources([("<x>", source)])
    summary = prog.summary_by_qualname("kernel")
    assert summary is not None
    return summary, lint_source("<x>", source)


def run(source: str, *args, block_threads=64):
    """Launch the same source under the sanitizer; return violations."""
    device, gpufs, fid = make_env()
    ns: dict = {}
    exec(compile(textwrap.dedent(source), "<x>", "exec"), ns)
    device.launch(ns["kernel"], grid=1, block_threads=block_threads,
                  args=args)
    return device, gpufs, fid, gpufs.sanitizer.violations


class TestLockstepCrossCheck:
    SRC = """
        def kernel(ctx):
            yield from ctx.syncthreads()
            if ctx.warp_in_block == 0:
                yield from ctx.syncthreads()
    """

    def test_violation_is_inside_the_static_interval(self):
        _, _, _, violations = run(self.SRC)
        [v] = violations
        assert v.invariant == "lockstep"

        summary, findings = statics(self.SRC)
        # The runtime disagreement (1 vs 2 barriers) is exactly the
        # static uncertainty interval...
        assert (summary.barriers_min, summary.barriers_max) \
            == tuple(sorted({v.details["barriers"],
                             v.details["expected"]}))
        # ...and the linter already called the hang out.
        assert "barrier-divergence" in {f.rule for f in findings}

    def test_clean_twin_has_a_tight_interval(self):
        src = """
            def kernel(ctx):
                yield from ctx.syncthreads()
                yield from ctx.syncthreads()
        """
        _, _, _, violations = run(src)
        assert violations == []
        summary, findings = statics(src)
        assert summary.barriers_min == summary.barriers_max == 2
        assert not findings


class TestPinLeakCrossCheck:
    SRC = """
        def kernel(ctx, gpufs, fid):
            addr = yield from gpufs.gmmap(ctx, fid, 0)
            _ = yield from ctx.load(addr + ctx.lane * 4, "f4")
    """

    def test_leak_is_inside_the_static_pin_delta(self):
        device, gpufs, fid = make_env()
        ns: dict = {}
        exec(compile(textwrap.dedent(self.SRC), "<x>", "exec"), ns)
        device.launch(ns["kernel"], grid=1, block_threads=32,
                      args=(gpufs, fid))
        [v] = gpufs.sanitizer.violations
        assert v.invariant == "pin-leak"

        summary, _ = statics(self.SRC)
        assert summary.pin_delta_max > 0      # the may-set covers it

    def test_clean_twin_balances_statically_too(self):
        src = """
            def kernel(ctx, gpufs, fid):
                addr = yield from gpufs.gmmap(ctx, fid, 0)
                _ = yield from ctx.load(addr + ctx.lane * 4, "f4")
                yield from gpufs.gmunmap(ctx, fid, 0)
        """
        device, gpufs, fid = make_env()
        ns: dict = {}
        exec(compile(textwrap.dedent(src), "<x>", "exec"), ns)
        device.launch(ns["kernel"], grid=1, block_threads=32,
                      args=(gpufs, fid))
        assert gpufs.sanitizer.violations == []
        summary, _ = statics(src)
        assert (summary.pin_delta_min, summary.pin_delta_max) == (0, 0)


class TestTornWriteCrossCheck:
    SRC = """
        def kernel(ctx, buf, vals):
            yield from ctx.store(buf + ctx.lane * 4, vals, "f4")
    """

    def test_racy_store_is_inside_the_static_write_set(self):
        device, gpufs, fid = make_env()
        buf = device.alloc(PAGE)
        vals = np.ones(32, np.float32)
        ns: dict = {}
        exec(compile(textwrap.dedent(self.SRC), "<x>", "exec"), ns)
        device.launch(ns["kernel"], grid=1, block_threads=64,
                      args=(buf, vals))
        [v] = gpufs.sanitizer.violations
        assert v.invariant == "torn-write"

        # The static side deliberately does not PAIR raw global-memory
        # stores (addresses are not statically comparable - the
        # runtime detector owns that axis), but the may-set must still
        # contain the access the violation happened on.
        summary, _ = statics(self.SRC)
        assert "global_memory" in summary.writes
        [site] = [s for s in summary.sites
                  if s.struct == "global_memory" and s.kind == "write"]
        assert site.locks == frozenset()      # statically unordered
