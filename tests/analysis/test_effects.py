"""Interprocedural effect inference: summaries, joins, propagation.

Synthetic modules exercise each lattice dimension in isolation; the
repo-summary tests pin the *exact* inferred facts for the two
functions the paper leans on hardest - ``SyscallLayer.pwrite`` (the
write path: blocking, lock-taking, touches every shared structure)
and the Listing-1 fault loop ``APtr._page_fault``.
"""

import json
import subprocess
import sys
import textwrap

from repro.analysis.effects import TOP, EffectProgram


def program(*sources: str) -> EffectProgram:
    return EffectProgram.from_sources([
        (f"<m{i}>", textwrap.dedent(src))
        for i, src in enumerate(sources)])


def summary(prog: EffectProgram, qualname: str):
    s = prog.summary_by_qualname(qualname)
    assert s is not None, f"no summary for {qualname}"
    return s


class TestLockSummaries:
    def test_param_substitution_across_boundary(self):
        # The helper locks its *parameter*; the caller must see the
        # key spelled in its own argument expression.
        prog = program("""
            def locked_insert(ctx, key, entry):
                yield from ctx.lock(key)
                entry.ready = True
                yield from ctx.unlock(key)

            def kernel(ctx, table, e):
                yield from locked_insert(ctx, table.bucket(e.fpn), e)
        """)
        assert summary(prog, "locked_insert").may_acquire == {"key"}
        assert summary(prog, "kernel").may_acquire \
            == {"table.bucket(e.fpn)"}

    def test_self_substitution_for_bound_methods(self):
        prog = program("""
            class Table:
                def grab(self, ctx):
                    yield from ctx.lock(self.lock_key)

            def kernel(ctx, table):
                yield from table.grab(ctx)
        """)
        assert summary(prog, "Table.grab").may_acquire \
            == {"self.lock_key"}
        assert summary(prog, "kernel").may_acquire \
            == {"table.lock_key"}

    def test_exit_held_and_foreign_release(self):
        prog = program("""
            def acquire(ctx, k):
                yield from ctx.lock(k)

            def release(ctx, k):
                yield from ctx.unlock(k)

            def kernel(ctx, k):
                yield from acquire(ctx, k)
                yield from release(ctx, k)
        """)
        assert summary(prog, "acquire").exit_must_held == {"k"}
        assert summary(prog, "release").releases_foreign == {"k"}
        # The pair balances: the caller exits holding nothing.
        k = summary(prog, "kernel")
        assert k.exit_may_held == frozenset()
        assert k.exit_must_held == frozenset()

    def test_branch_join_must_vs_may(self):
        prog = program("""
            def kernel(ctx, a, cond):
                if cond:
                    yield from ctx.lock(a)
                yield from ctx.sleep(1)
        """)
        s = summary(prog, "kernel")
        assert s.exit_may_held == {"a"}       # union of arms
        assert s.exit_must_held == frozenset()  # intersection of arms

    def test_while_true_break_keeps_must_held(self):
        # The loop-join case the lexical scan lost: the only way out
        # of ``while True`` is the break, so the lock acquired before
        # it is MUST-held after the loop.
        prog = program("""
            def kernel(ctx, k):
                while True:
                    yield from ctx.lock(k)
                    break
                yield from ctx.sleep(1)
        """)
        s = summary(prog, "kernel")
        assert s.exit_must_held == {"k"}


class TestBarriersAndPins:
    def test_barrier_interval_through_branch(self):
        prog = program("""
            def kernel(ctx, cond):
                yield from ctx.syncthreads()
                if cond:
                    yield from ctx.syncthreads()
        """)
        s = summary(prog, "kernel")
        assert (s.barriers_min, s.barriers_max) == (1, 2)

    def test_barrier_in_loop_widens_to_top(self):
        prog = program("""
            def kernel(ctx, n):
                for _ in range(n):
                    yield from ctx.syncthreads()
        """)
        s = summary(prog, "kernel")
        assert s.barriers_min == 0
        assert s.barriers_max == TOP
        assert s.to_dict()["barriers"]["max"] == "unbounded"

    def test_pin_delta_propagates_through_helper(self):
        prog = program("""
            def pin_two(ctx, gpufs, fid):
                yield from gpufs.gmmap(ctx, fid, 0)
                yield from gpufs.gmmap(ctx, fid, 4096)

            def kernel(ctx, gpufs, fid):
                yield from pin_two(ctx, gpufs, fid)
                yield from gpufs.gmunmap(ctx, fid, 0)
        """)
        s = summary(prog, "kernel")
        assert (s.pin_delta_min, s.pin_delta_max) == (1, 1)


class TestDestroysParams:
    def test_always_vs_sometimes(self):
        prog = program("""
            def close_always(ctx, p):
                yield from p.destroy(ctx)

            def close_sometimes(ctx, p, cond):
                if cond:
                    yield from p.destroy(ctx)
                yield from ctx.sleep(1)
        """)
        assert summary(prog, "close_always").destroys_params == {
            1: "always"}
        assert summary(prog, "close_sometimes").destroys_params == {
            1: "sometimes"}

    def test_early_return_helper_is_sometimes(self):
        # The seeded-leak shape: an early return skips the destroy.
        prog = program("""
            def finish(ctx, p, n):
                if n == 0:
                    return
                yield from p.destroy(ctx)
        """)
        assert summary(prog, "finish").destroys_params == {
            1: "sometimes"}

    def test_transitive_destroy(self):
        prog = program("""
            def inner(ctx, q):
                yield from q.destroy(ctx)

            def outer(ctx, p):
                yield from inner(ctx, p)
        """)
        assert summary(prog, "outer").destroys_params == {1: "always"}


class TestCallGraph:
    def test_recursive_scc_reaches_fixpoint(self):
        prog = program("""
            def ping(ctx, k, depth):
                yield from ctx.lock(k)
                yield from ctx.unlock(k)
                if depth:
                    yield from pong(ctx, k, depth - 1)

            def pong(ctx, k, depth):
                yield from ctx.syncthreads()
                yield from ping(ctx, k, depth)
        """)
        assert summary(prog, "ping").may_acquire == {"k"}
        assert summary(prog, "pong").may_acquire == {"k"}
        assert summary(prog, "pong").barriers_max == TOP

    def test_dynamic_dispatch_joins_candidates(self):
        # Two classes define ``flush_slot``; a call through an unknown
        # receiver must take the union of both effects.
        prog = program("""
            class A:
                def flush_slot(self, ctx):
                    yield from ctx.lock('a')
                    yield from ctx.unlock('a')

            class B:
                def flush_slot(self, ctx):
                    yield from ctx.syncthreads()

            def kernel(ctx, obj):
                yield from obj.flush_slot(ctx)
        """)
        s = summary(prog, "kernel")
        assert s.may_acquire == {"'a'"}
        assert (s.barriers_min, s.barriers_max) == (0, 1)

    def test_unresolved_timed_call_is_opaque(self):
        prog = program("""
            def kernel(ctx, ptr):
                yield from ptr.read(ctx, 4)
        """)
        assert summary(prog, "kernel").opaque_calls == {"read"}

    def test_cross_module_resolution(self):
        prog = program(
            """
            def pinner(ctx, gpufs, fid):
                yield from gpufs.gmmap(ctx, fid, 0)
            """,
            """
            def kernel(ctx, gpufs, fid):
                yield from pinner(ctx, gpufs, fid)
            """)
        assert summary(prog, "kernel").pin_delta_max == 1

    def test_name_collision_with_plain_fn_refuses(self):
        # ``step`` is a generator in one module and a plain ctx
        # function in another: cross-module by-name resolution must
        # refuse rather than guess.
        prog = program(
            """
            def step(ctx, k):
                yield from ctx.lock(k)
            """,
            """
            def step(ctx, k):
                return k + 1
            """,
            """
            def kernel(ctx, obj, k):
                yield from obj.step(ctx, k)
            """)
        assert summary(prog, "kernel").may_acquire == frozenset()


class TestRepoSummaries:
    """Exact spot-checks over the real tree (parsed, never imported)."""

    @classmethod
    def setup_class(cls):
        from repro.analysis.linter import lint_paths
        cls.prog = lint_paths(["src/repro"]).effects

    def test_syscall_pwrite_summary(self):
        s = summary(self.prog, "SyscallLayer.pwrite")
        assert s.yields
        assert s.blocking_syscalls == {"pwrite"}
        assert s.may_acquire == {"lock"}     # the bucket spinlock key
        assert s.exit_may_held == frozenset()
        assert s.barriers_max == 0
        assert (s.pin_delta_min, s.pin_delta_max) == (0, 0)
        assert {"page_table", "page_cache", "staging",
                "global_memory"} <= s.writes
        assert "page_table" in s.reads
        assert not s.sites_truncated

    def test_listing1_fault_loop_summary(self):
        # APtr._page_fault is the paper's Listing 1: the per-lane
        # fault loop that resolves xpages through the TLB + backend.
        s = summary(self.prog, "APtr._page_fault")
        assert s.yields
        assert s.blocking_syscalls == frozenset()
        assert s.may_acquire == {"lock"}
        assert s.exit_may_held == frozenset()
        assert s.barriers_max == 0
        assert "page_table" in s.writes
        assert "page_table" in s.reads
        assert s.destroys_params == {}

    def test_every_generator_kernel_has_a_summary(self):
        for key, node in self.prog.graph.nodes.items():
            assert key in self.prog.summaries, f"missing: {key}"


class TestEffectsExport:
    def test_cli_effects_json(self, tmp_path):
        out = tmp_path / "effects.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis",
             "src/repro/syscalls", "--effects", str(out)],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        doc = json.loads(out.read_text())
        assert doc["version"] == 1
        functions = doc["functions"]
        pwrite = next(v for k, v in functions.items()
                      if v["qualname"] == "SyscallLayer.pwrite")
        assert pwrite["blocking_syscalls"] == ["pwrite"]
        assert pwrite["yields"] is True
        # Every generator kernel of the linted tree is present.
        assert any(v["qualname"] == "SyscallLayer.wait"
                   for v in functions.values())
