"""Seeded-bug corpus: defects only visible *through* helper calls.

Every case here hides a real kernel-coroutine bug one or two helpers
away from the function where it bites, then asserts three things:

1. the interprocedural linter reports it,
2. the pre-effects lexical scan (``interprocedural=False``) provably
   misses it - the regression the effect summaries exist to close,
3. a minimally different clean twin stays quiet in both modes.
"""

import textwrap

from repro.analysis.linter import lint_paths, lint_source


def lint(code: str, interprocedural: bool = True) -> list:
    return lint_source("<t>", textwrap.dedent(code),
                       interprocedural=interprocedural)


def rules_of(findings) -> set:
    return {f.rule for f in findings}


def messages(findings, rule: str) -> str:
    return "\n".join(f.message for f in findings if f.rule == rule)


class TestLockOrderThroughHelpers:
    BUGGY = """
        def take_second(ctx, kb):
            yield from ctx.lock(kb)
            yield from ctx.unlock(kb)

        def forward(ctx, a, b):
            yield from ctx.lock(a)
            yield from take_second(ctx, b)
            yield from ctx.unlock(a)

        def backward(ctx, a, b):
            yield from ctx.lock(b)
            yield from ctx.lock(a)
            yield from ctx.unlock(a)
            yield from ctx.unlock(b)
    """

    def test_inversion_via_one_helper(self):
        findings = lint(self.BUGGY)
        assert "lock-order" in rules_of(findings)
        assert "inversion" in messages(findings, "lock-order")

    def test_lexical_scan_misses_it(self):
        # Without summaries ``forward`` contributes no a->b edge, so
        # there is no cycle to find.
        findings = lint(self.BUGGY, interprocedural=False)
        assert "inversion" not in messages(findings, "lock-order")

    def test_clean_twin_same_order(self):
        clean = self.BUGGY.replace(
            "yield from ctx.lock(b)\n            yield from ctx.lock(a)",
            "yield from ctx.lock(a)\n            yield from ctx.lock(b)"
        ).replace(
            "yield from ctx.unlock(a)\n            yield from ctx.unlock(b)",
            "yield from ctx.unlock(b)\n            yield from ctx.unlock(a)")
        assert not lint(clean)
        assert not lint(clean, interprocedural=False)

    def test_inversion_two_helpers_deep(self):
        # The acquisition is two substitutions away from the entry
        # kernel: inner locks its param, outer forwards its own.
        code = """
            def inner(ctx, key2):
                yield from ctx.lock(key2)
                yield from ctx.unlock(key2)

            def outer(ctx, key1):
                yield from inner(ctx, key1)

            def forward(ctx, a, b):
                yield from ctx.lock(a)
                yield from outer(ctx, b)
                yield from ctx.unlock(a)

            def backward(ctx, a, b):
                yield from ctx.lock(b)
                yield from ctx.lock(a)
                yield from ctx.unlock(a)
                yield from ctx.unlock(b)
        """
        assert "inversion" in messages(lint(code), "lock-order")
        assert "inversion" not in messages(
            lint(code, interprocedural=False), "lock-order")


class TestBlockingUnderLockThroughHelpers:
    BUGGY = """
        def spill(ctx, sc, fid, buf):
            yield from sc.pwrite(ctx, fid, buf, 0)

        def kernel(ctx, sc, fid, buf, k):
            yield from ctx.lock(k)
            yield from spill(ctx, sc, fid, buf)
            yield from ctx.unlock(k)
    """

    def test_hidden_pwrite_under_lock(self):
        findings = lint(self.BUGGY)
        msg = messages(findings, "lock-order")
        assert "blocking syscall 'pwrite'" in msg
        assert "reached via helper 'spill'" in msg

    def test_lexical_scan_misses_it(self):
        assert not lint(self.BUGGY, interprocedural=False)

    def test_clean_twin_releases_first(self):
        clean = """
            def spill(ctx, sc, fid, buf):
                yield from sc.pwrite(ctx, fid, buf, 0)

            def kernel(ctx, sc, fid, buf, k):
                yield from ctx.lock(k)
                yield from ctx.unlock(k)
                yield from spill(ctx, sc, fid, buf)
        """
        assert not lint(clean)

    def test_lock_handoff_helper(self):
        # The helper RETURNS holding the lock (exit_must_held); the
        # caller's own direct pwrite is then under it.
        code = """
            def grab(ctx, kk):
                yield from ctx.lock(kk)

            def kernel(ctx, sc, fid, buf, k):
                yield from grab(ctx, k)
                yield from sc.pwrite(ctx, fid, buf, 0)
                yield from ctx.unlock(k)
        """
        msg = messages(lint(code), "lock-order")
        assert "blocking syscall 'pwrite'" in msg
        assert "lock 'k' is held" in msg
        # The lexical scan cannot see the handoff (it flags the
        # caller's unlock instead, a different finding entirely).
        lexical = messages(lint(code, interprocedural=False),
                           "lock-order")
        assert "blocking syscall" not in lexical

    def test_lock_handoff_clean_twin(self):
        clean = """
            def grab(ctx, kk):
                yield from ctx.lock(kk)

            def kernel(ctx, sc, fid, buf, k):
                yield from grab(ctx, k)
                yield from ctx.unlock(k)
                yield from sc.pwrite(ctx, fid, buf, 0)
        """
        assert not lint(clean)


class TestSelfDeadlockAndForeignRelease:
    def test_reacquire_inside_helper(self):
        code = """
            def regrab(ctx, kk):
                yield from ctx.lock(kk)
                yield from ctx.unlock(kk)

            def kernel(ctx, k):
                yield from ctx.lock(k)
                yield from regrab(ctx, k)
                yield from ctx.unlock(k)
        """
        msg = messages(lint(code), "lock-order")
        assert "re-acquired inside helper 'regrab'" in msg
        assert not lint(code, interprocedural=False)

    def test_reacquire_clean_twin_different_key(self):
        clean = """
            def regrab(ctx, kk):
                yield from ctx.lock(kk)
                yield from ctx.unlock(kk)

            def kernel(ctx, k, other):
                yield from ctx.lock(k)
                yield from regrab(ctx, other)
                yield from ctx.unlock(k)
        """
        assert not lint(clean)

    def test_helper_releases_callers_lock(self):
        # ``handoff`` unlocks on the caller's behalf
        # (releases_foreign); the caller's own unlock is then
        # provably unbalanced.
        code = """
            def handoff(ctx, kk):
                yield from ctx.unlock(kk)

            def kernel(ctx, k):
                yield from ctx.lock(k)
                yield from handoff(ctx, k)
                yield from ctx.unlock(k)
        """
        msg = messages(lint(code), "lock-order")
        assert "unlock of 'k' which is not held" in msg
        # Lexically the caller looks balanced - lock(k), opaque call,
        # unlock(k) - so the bug is invisible there.
        lexical = messages(lint(code, interprocedural=False),
                           "lock-order")
        assert "unlock of 'k'" not in lexical

    def test_foreign_release_clean_twin(self):
        clean = """
            def handoff(ctx, kk):
                yield from ctx.unlock(kk)

            def kernel(ctx, k):
                yield from ctx.lock(k)
                yield from handoff(ctx, k)
        """
        assert not lint(clean)


class TestLifecycleThroughHelpers:
    BUGGY = """
        def finish(ctx, p, n):
            if n == 0:
                return
            yield from p.destroy(ctx)

        def kernel(ctx, avm, fid, n):
            p = yield from avm.gvmmap(ctx, fid, 0, 4096)
            yield from finish(ctx, p, n)
    """

    def test_pin_leak_through_early_return_helper(self):
        findings = lint(self.BUGGY)
        msg = messages(findings, "aptr-lifecycle")
        assert "only destroyed inside a branch" in msg

    def test_lexical_scan_treats_it_as_escape(self):
        assert not lint(self.BUGGY, interprocedural=False)

    def test_clean_twin_unconditional_destroy(self):
        clean = """
            def finish(ctx, p):
                yield from p.destroy(ctx)

            def kernel(ctx, avm, fid):
                p = yield from avm.gvmmap(ctx, fid, 0, 4096)
                yield from finish(ctx, p)
        """
        assert not lint(clean)
        assert not lint(clean, interprocedural=False)

    def test_helper_that_never_destroys_is_still_an_escape(self):
        # Ownership transfer stays the conservative default: a
        # resolvable helper with no destroy summary keeps the rule
        # quiet rather than reporting a leak it cannot prove.
        code = """
            def stash(ctx, p):
                yield from ctx.sleep(1)

            def kernel(ctx, avm, fid):
                p = yield from avm.gvmmap(ctx, fid, 0, 4096)
                yield from stash(ctx, p)
        """
        assert not lint(code)

    def test_ticket_waited_conditionally_in_helper(self):
        code = """
            def settle(ctx, sc, t, flush):
                if flush:
                    yield from sc.wait(ctx, t)

            def kernel(ctx, sc, fid, buf, flush):
                t = yield from sc.pwrite_async(ctx, fid, buf, 0)
                yield from settle(ctx, sc, t, flush)
        """
        msg = messages(lint(code), "aptr-lifecycle")
        assert "waited on only inside a branch" in msg
        assert not lint(code, interprocedural=False)

    def test_ticket_clean_twin_unconditional_wait(self):
        clean = """
            def settle(ctx, sc, t):
                yield from sc.wait(ctx, t)

            def kernel(ctx, sc, fid, buf):
                t = yield from sc.pwrite_async(ctx, fid, buf, 0)
                yield from settle(ctx, sc, t)
        """
        assert not lint(clean)


class TestBarrierDivergenceThroughHelpers:
    BUGGY = """
        def phase_sync(ctx):
            yield from ctx.syncthreads()

        def kernel(ctx, out):
            if ctx.warp_id == 0:
                yield from phase_sync(ctx)
    """

    def test_barrier_hidden_in_helper_under_warp_guard(self):
        findings = lint(self.BUGGY)
        msg = messages(findings, "barrier-divergence")
        assert "hidden inside helper 'phase_sync'" in msg
        assert "warp-varying condition" in msg

    def test_lexical_scan_misses_it(self):
        findings = lint(self.BUGGY, interprocedural=False)
        assert "barrier-divergence" not in rules_of(findings)

    def test_clean_twin_unguarded_helper(self):
        clean = """
            def phase_sync(ctx):
                yield from ctx.syncthreads()

            def kernel(ctx, out):
                yield from phase_sync(ctx)
        """
        assert not lint(clean)


class TestSharedRaceThroughHelpers:
    BUGGY = """
        def bind_frame(ctx, cache, fid, fpn, frame):
            cache.bind(fid, fpn, frame)
            yield from ctx.sleep(1)

        def kernel(ctx, cache, fid, fpn, frame):
            yield from bind_frame(ctx, cache, fid, fpn, frame)
    """

    def test_unlocked_frame_write_in_helper(self):
        findings = lint(self.BUGGY)
        msg = messages(findings, "shared-race")
        assert "unsynchronized page-cache frame write" in msg
        # Reported at the site, inside the helper.
        [race] = [f for f in findings if f.rule == "shared-race"]
        assert race.function == "bind_frame"

    def test_lexical_scan_has_no_race_rule(self):
        findings = lint(self.BUGGY, interprocedural=False)
        assert "shared-race" not in rules_of(findings)

    def test_clean_twin_caller_holds_lock(self):
        # The same helper is fine when every root reaches it with the
        # bucket lock held: sites inherit the caller's must-set.
        clean = """
            def bind_frame(ctx, cache, fid, fpn, frame):
                cache.bind(fid, fpn, frame)
                yield from ctx.sleep(1)

            def kernel(ctx, cache, fid, fpn, frame, k):
                yield from ctx.lock(k)
                yield from bind_frame(ctx, cache, fid, fpn, frame)
                yield from ctx.unlock(k)
        """
        assert "shared-race" not in rules_of(lint(clean))


class TestCrossModule:
    def _write(self, tmp_path, name, code):
        path = tmp_path / name
        path.write_text(textwrap.dedent(code))
        return path

    def test_missing_yield_from_on_imported_helper(self, tmp_path):
        self._write(tmp_path, "helpers.py", """
            def step_helper(ctx, n):
                yield from ctx.sleep(n)
        """)
        self._write(tmp_path, "kern.py", """
            from helpers import step_helper

            def kernel(ctx, n):
                step_helper(ctx, n)
                yield from ctx.fence()
        """)
        result = lint_paths([str(tmp_path)])
        assert "missing-yield-from" in rules_of(result.findings)
        lexical = lint_paths([str(tmp_path)], interprocedural=False)
        assert "missing-yield-from" not in rules_of(lexical.findings)

    def test_cross_module_blocking_under_lock(self, tmp_path):
        self._write(tmp_path, "io_helpers.py", """
            def flush_dirty(ctx, sc, fid, buf):
                yield from sc.pwrite(ctx, fid, buf, 0)
        """)
        self._write(tmp_path, "kern.py", """
            from io_helpers import flush_dirty

            def kernel(ctx, sc, fid, buf, k):
                yield from ctx.lock(k)
                yield from flush_dirty(ctx, sc, fid, buf)
                yield from ctx.unlock(k)
        """)
        result = lint_paths([str(tmp_path)])
        msg = messages(result.findings, "lock-order")
        assert "reached via helper 'flush_dirty'" in msg
        lexical = lint_paths([str(tmp_path)], interprocedural=False)
        assert not lexical.findings


class TestLoopJoinRegression:
    """The lexical branch-join bug the rewrite fixed: both modes now
    share the path-sensitive walker, so these hold WITHOUT effects."""

    def test_lock_before_break_survives_the_loop(self):
        # The old scan joined loop exits by forgetting the break
        # states: the unlock below used to be a false 'not held'.
        code = """
            def kernel(ctx, k, work):
                while True:
                    yield from ctx.lock(k)
                    break
                yield from ctx.unlock(k)
        """
        assert not lint(code)
        assert not lint(code, interprocedural=False)

    def test_blocking_after_loop_with_lock_held(self):
        code = """
            def kernel(ctx, sc, fid, buf, k):
                while True:
                    yield from ctx.lock(k)
                    break
                yield from sc.pwrite(ctx, fid, buf, 0)
                yield from ctx.unlock(k)
        """
        for interprocedural in (True, False):
            msg = messages(lint(code, interprocedural=interprocedural),
                           "lock-order")
            assert "blocking syscall 'pwrite'" in msg

    def test_conditional_lock_is_may_not_must(self):
        # Branch join: the lock is held on one arm only, so blocking
        # under it hedges with 'may be held' (union) while the unlock
        # on the same arm stays balanced (no false positives from the
        # intersection).
        code = """
            def kernel(ctx, sc, fid, buf, k, cond):
                if cond:
                    yield from ctx.lock(k)
                yield from sc.pwrite(ctx, fid, buf, 0)
                if cond:
                    yield from ctx.unlock(k)
        """
        for interprocedural in (True, False):
            msg = messages(lint(code, interprocedural=interprocedural),
                           "lock-order")
            assert "may be held" in msg
