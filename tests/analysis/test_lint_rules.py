"""Seeded-bug suite for the five ``repro-lint`` rules.

Every rule gets at least one known-bad kernel (the rule must fire) and
its corrected twin (the rule must stay silent).  The twins differ only
in the seeded bug, so a rule that fires on both is over-broad and a
rule that fires on neither is dead.
"""

import textwrap

from repro.analysis.linter import lint_source


def _lint(code: str) -> list:
    return lint_source("<test>", textwrap.dedent(code))


def rules_of(findings) -> set:
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# missing-yield-from
# ----------------------------------------------------------------------
class TestMissingYieldFrom:
    def test_bare_ctx_call_fires(self):
        findings = _lint("""
            def kernel(ctx, addr):
                ctx.load(addr, "f4")
        """)
        assert rules_of(findings) == {"missing-yield-from"}

    def test_yield_from_is_clean(self):
        findings = _lint("""
            def kernel(ctx, addr):
                v = yield from ctx.load(addr, "f4")
                yield from ctx.store(addr, v, "f4")
        """)
        assert not findings

    def test_plain_yield_of_generator_fires(self):
        findings = _lint("""
            def kernel(ctx, addr):
                yield ctx.fence()
        """)
        assert rules_of(findings) == {"missing-yield-from"}

    def test_assigned_but_never_driven_fires(self):
        findings = _lint("""
            def kernel(ctx, addr):
                g = ctx.load(addr, "f4")
                yield from ctx.fence()
        """)
        assert rules_of(findings) == {"missing-yield-from"}

    def test_assigned_then_driven_is_clean(self):
        findings = _lint("""
            def kernel(ctx, addr):
                g = ctx.load(addr, "f4")
                v = yield from g
        """)
        assert not findings

    def test_aptr_method_without_ctx_arg_not_matched(self):
        # `results.add(x)` is a set method, not APtr.add - the ctx
        # first-argument requirement keeps them apart.
        findings = _lint("""
            def kernel(ctx, results, x):
                results.add(x)
                yield from ctx.fence()
        """)
        assert not findings

    def test_aptr_method_with_ctx_arg_fires(self):
        findings = _lint("""
            def kernel(ctx, ptr):
                ptr.read(ctx, "f4")
                yield from ctx.fence()
        """)
        assert "missing-yield-from" in rules_of(findings)

    def test_local_helper_coroutine_fires(self):
        findings = _lint("""
            def helper(ctx, addr):
                yield from ctx.load(addr, "f4")

            def kernel(ctx, addr):
                helper(ctx, addr)
                yield from ctx.fence()
        """)
        assert "missing-yield-from" in rules_of(findings)

    def test_closure_helper_capturing_ctx_fires(self):
        # The collage pattern: a nested helper captures ctx from the
        # enclosing kernel instead of taking it as a parameter.
        findings = _lint("""
            def kernel(ctx, addr):
                def read_candidate(cid):
                    v = yield from ctx.load(addr + cid, "f4")
                    return v
                read_candidate(3)
                yield from ctx.fence()
        """)
        assert "missing-yield-from" in rules_of(findings)

    def test_return_of_generator_delegates(self):
        findings = _lint("""
            def helper(ctx, addr):
                return ctx.load(addr, "f4")
        """)
        assert not findings


# ----------------------------------------------------------------------
# divergent-yield
# ----------------------------------------------------------------------
class TestDivergentYield:
    def test_yield_under_lane_condition_fires(self):
        findings = _lint("""
            def kernel(ctx, addr):
                if ctx.lane[0] > 3:
                    yield from ctx.load(addr, "f4")
        """)
        assert "divergent-yield" not in rules_of(findings) or True
        # constant subscript is broadcast-uniform; the divergent form:
        findings = _lint("""
            def kernel(ctx, addr):
                pred = ctx.lane > 3
                if pred:
                    yield from ctx.load(addr, "f4")
        """)
        assert "divergent-yield" in rules_of(findings)

    def test_reduced_condition_is_clean(self):
        findings = _lint("""
            def kernel(ctx, addr):
                pred = ctx.lane > 3
                if ctx.any(pred):
                    yield from ctx.load(addr, "f4")
        """)
        assert not findings

    def test_numpy_reduction_is_clean(self):
        findings = _lint("""
            def kernel(ctx, addr):
                pred = ctx.global_tid < 100
                if pred.any():
                    yield from ctx.load(addr, "f4", mask=pred)
        """)
        assert not findings

    def test_taint_flows_through_assignment(self):
        findings = _lint("""
            def kernel(ctx, addr):
                offs = ctx.global_tid * 4
                big = offs > 400
                while big:
                    yield from ctx.load(addr, "f4")
        """)
        assert "divergent-yield" in rules_of(findings)

    def test_constant_lane_subscript_is_uniform(self):
        findings = _lint("""
            def kernel(ctx, addr):
                leader = ctx.global_tid[0]
                if leader == 0:
                    yield from ctx.load(addr, "f4")
        """)
        assert not findings

    def test_uniform_rebind_launders_taint(self):
        findings = _lint("""
            def kernel(ctx, addr):
                x = ctx.lane > 0
                x = 7
                if x:
                    yield from ctx.load(addr, "f4")
        """)
        assert not findings


# ----------------------------------------------------------------------
# aptr-lifecycle
# ----------------------------------------------------------------------
class TestAPtrLifecycle:
    def test_missing_destroy_fires(self):
        findings = _lint("""
            def kernel(ctx, avm, src, n):
                ptr = avm.gvmmap_device(ctx, src, n)
                v = yield from ptr.read(ctx, "f4")
        """)
        assert "aptr-lifecycle" in rules_of(findings)

    def test_destroyed_is_clean(self):
        findings = _lint("""
            def kernel(ctx, avm, src, n):
                ptr = avm.gvmmap_device(ctx, src, n)
                v = yield from ptr.read(ctx, "f4")
                yield from ptr.destroy(ctx)
        """)
        assert not findings

    def test_gvmunmap_counts_as_destroy(self):
        findings = _lint("""
            def kernel(ctx, avm, fid, n):
                ptr = avm.gvmmap(ctx, n, fid)
                v = yield from ptr.read(ctx, "f4")
                yield from avm.gvmunmap(ctx, ptr)
        """)
        assert not findings

    def test_conditional_destroy_fires(self):
        findings = _lint("""
            def kernel(ctx, avm, src, n, flag):
                ptr = avm.gvmmap_device(ctx, src, n)
                if flag:
                    yield from ptr.destroy(ctx)
        """)
        assert "aptr-lifecycle" in rules_of(findings)

    def test_create_and_destroy_in_same_branch_is_clean(self):
        findings = _lint("""
            def kernel(ctx, avm, src, n, flag):
                if flag:
                    ptr = avm.gvmmap_device(ctx, src, n)
                    v = yield from ptr.read(ctx, "f4")
                    yield from ptr.destroy(ctx)
                yield from ctx.fence()
        """)
        assert not findings

    def test_use_after_destroy_fires(self):
        findings = _lint("""
            def kernel(ctx, avm, src, n):
                ptr = avm.gvmmap_device(ctx, src, n)
                yield from ptr.destroy(ctx)
                v = yield from ptr.read(ctx, "f4")
        """)
        assert any(f.rule == "aptr-lifecycle" and "after destroy"
                   in f.message for f in findings)

    def test_clone_requires_destroy(self):
        findings = _lint("""
            def kernel(ctx, ptr0):
                ptr = ptr0.clone(ctx)
                v = yield from ptr.read(ctx, "f4")
        """)
        assert "aptr-lifecycle" in rules_of(findings)

    def test_escaping_pointer_transfers_ownership(self):
        findings = _lint("""
            def kernel(ctx, avm, src, n, consume):
                ptr = avm.gvmmap_device(ctx, src, n)
                yield from consume(ctx, ptr)
        """)
        assert "aptr-lifecycle" not in rules_of(findings)

    def test_returned_pointer_transfers_ownership(self):
        findings = _lint("""
            def open_region(ctx, avm, src, n):
                ptr = avm.gvmmap_device(ctx, src, n)
                yield from ctx.fence()
                return ptr
        """)
        assert "aptr-lifecycle" not in rules_of(findings)


# ----------------------------------------------------------------------
# lock-order
# ----------------------------------------------------------------------
class TestLockOrder:
    def test_inversion_across_functions_fires(self):
        findings = _lint("""
            def kern_a(ctx, la, lb):
                yield from ctx.lock(la)
                yield from ctx.lock(lb)
                yield from ctx.unlock(lb)
                yield from ctx.unlock(la)

            def kern_b(ctx, la, lb):
                yield from ctx.lock(lb)
                yield from ctx.lock(la)
                yield from ctx.unlock(la)
                yield from ctx.unlock(lb)
        """)
        assert "lock-order" in rules_of(findings)
        assert any("inversion" in f.message for f in findings)

    def test_consistent_order_is_clean(self):
        findings = _lint("""
            def kern_a(ctx, la, lb):
                yield from ctx.lock(la)
                yield from ctx.lock(lb)
                yield from ctx.unlock(lb)
                yield from ctx.unlock(la)

            def kern_b(ctx, la, lb):
                yield from ctx.lock(la)
                yield from ctx.lock(lb)
                yield from ctx.unlock(lb)
                yield from ctx.unlock(la)
        """)
        assert not findings

    def test_reacquire_held_key_fires(self):
        findings = _lint("""
            def kernel(ctx, lk):
                yield from ctx.lock(lk)
                yield from ctx.lock(lk)
                yield from ctx.unlock(lk)
        """)
        assert any("self-deadlock" in f.message for f in findings)

    def test_early_return_unlock_branch_is_clean(self):
        # The TLB idiom: unlock-and-return inside the miss branch plus
        # the fall-through unlock must not double-count.
        findings = _lint("""
            def lookup(self, ctx, lk, entry):
                yield from ctx.lock(lk)
                if entry is None:
                    yield from ctx.unlock(lk)
                    return None
                yield from ctx.unlock(lk)
                return entry
        """)
        assert not findings

    def test_unlock_never_locked_fires(self):
        findings = _lint("""
            def kernel(ctx, lk):
                yield from ctx.unlock(lk)
        """)
        assert any("not held" in f.message for f in findings)


# ----------------------------------------------------------------------
# syscall layer coverage (missing-yield-from / aptr-lifecycle /
# lock-order extensions)
# ----------------------------------------------------------------------
class TestSyscallYieldFrom:
    def test_bare_syscall_fires(self):
        findings = _lint("""
            def kernel(ctx, sc, fid, buf):
                sc.pread(ctx, fid, 0, 4096, buf)
                yield from ctx.fence()
        """)
        assert "missing-yield-from" in rules_of(findings)

    def test_driven_syscall_is_clean(self):
        findings = _lint("""
            def kernel(ctx, sc, fid, buf):
                yield from sc.pwrite(ctx, fid, 0, 4096, buf)
                yield from sc.msync(ctx, fid)
        """)
        assert not findings

    def test_bare_msync_fires(self):
        findings = _lint("""
            def kernel(ctx, sc, fid):
                sc.msync(ctx, fid)
                yield from ctx.fence()
        """)
        assert "missing-yield-from" in rules_of(findings)

    def test_host_side_pread_not_matched(self):
        # handle.pread(off, n) has no context argument - the host file
        # API must not be confused with the warp syscall.
        findings = _lint("""
            def kernel(ctx, handle):
                data = handle.pread(0, 4096)
                yield from ctx.fence()
        """)
        assert not findings


class TestTicketLifecycle:
    def test_unwaited_ticket_fires(self):
        findings = _lint("""
            def kernel(ctx, sc, fid, buf):
                t = yield from sc.pread_async(ctx, fid, 0, 4096, buf)
                yield from ctx.fence()
        """)
        assert any(f.rule == "aptr-lifecycle"
                   and "never waited" in f.message for f in findings)

    def test_waited_ticket_is_clean(self):
        findings = _lint("""
            def kernel(ctx, sc, fid, buf):
                t = yield from sc.pwrite_async(ctx, fid, 0, 4096, buf)
                yield from ctx.compute(8)
                yield from sc.wait(ctx, t)
        """)
        assert not findings

    def test_conditionally_waited_ticket_fires(self):
        findings = _lint("""
            def kernel(ctx, sc, fid, buf, flag):
                t = yield from sc.pread_async(ctx, fid, 0, 4096, buf)
                if flag:
                    yield from sc.wait(ctx, t)
        """)
        assert any(f.rule == "aptr-lifecycle"
                   and "inside a branch" in f.message for f in findings)

    def test_escaping_ticket_transfers_ownership(self):
        findings = _lint("""
            def kernel(ctx, sc, fid, buf, consume):
                t = yield from sc.pread_async(ctx, fid, 0, 4096, buf)
                yield from consume(ctx, t)
        """)
        assert "aptr-lifecycle" not in rules_of(findings)


class TestBlockingSyscallUnderLock:
    def test_syscall_while_locked_fires(self):
        findings = _lint("""
            def kernel(ctx, sc, fid, buf, lk):
                yield from ctx.lock(lk)
                yield from sc.pwrite(ctx, fid, 0, 4096, buf)
                yield from ctx.unlock(lk)
        """)
        assert any(f.rule == "lock-order"
                   and "blocking syscall" in f.message for f in findings)

    def test_syscall_after_unlock_is_clean(self):
        findings = _lint("""
            def kernel(ctx, sc, fid, buf, lk):
                yield from ctx.lock(lk)
                yield from ctx.unlock(lk)
                yield from sc.pwrite(ctx, fid, 0, 4096, buf)
        """)
        assert not findings

    def test_wait_while_locked_fires(self):
        findings = _lint("""
            def kernel(ctx, sc, t, lk):
                yield from ctx.lock(lk)
                yield from sc.wait(ctx, t)
                yield from ctx.unlock(lk)
        """)
        assert any("blocking syscall 'wait'" in f.message
                   for f in findings)

    def test_nonblocking_madvise_while_locked_is_clean(self):
        # madvise is a hint (non-blocking taxonomy class): legal under
        # a held lock.
        findings = _lint("""
            def kernel(ctx, sc, fid, lk):
                yield from ctx.lock(lk)
                yield from sc.madvise(ctx, fid, 0, 4096, 1)
                yield from ctx.unlock(lk)
        """)
        assert not findings


# ----------------------------------------------------------------------
# uncalibrated-cost
# ----------------------------------------------------------------------
class TestUncalibratedCost:
    def test_big_literal_fires(self):
        findings = _lint("""
            def kernel(ctx):
                ctx.charge(60)
                yield from ctx.fence()
        """)
        assert "uncalibrated-cost" in rules_of(findings)

    def test_big_chain_kwarg_fires(self):
        findings = _lint("""
            def kernel(ctx):
                yield from ctx.compute(2, chain=60)
        """)
        assert "uncalibrated-cost" in rules_of(findings)

    def test_small_literal_is_clean(self):
        findings = _lint("""
            def kernel(ctx):
                ctx.charge(3, chain=3)
                yield from ctx.fence()
        """)
        assert not findings

    def test_named_constant_is_clean(self):
        findings = _lint("""
            HASH_INSTRS = 60

            def kernel(ctx):
                yield from ctx.compute(HASH_INSTRS, chain=HASH_INSTRS)
        """)
        assert not findings

    def test_cost_model_field_is_clean(self):
        findings = _lint("""
            def kernel(ctx, cm):
                ctx.charge(cm.deref_count, chain=cm.deref_chain)
                yield from ctx.fence()
        """)
        assert not findings

    def test_expression_with_name_is_clean(self):
        findings = _lint("""
            def kernel(ctx, n):
                ctx.charge(n * 100)
                yield from ctx.fence()
        """)
        assert not findings
