"""Unit semantics of the ``shared-race`` happens-before check."""

import textwrap

from repro.analysis import rules_race
from repro.analysis.effects import AccessSite, EffectProgram


def site(struct="page_table", kind="write", line=10, col=0,
         function="kernel", locks=(), epoch=0, path="<t>"):
    return AccessSite(struct=struct, kind=kind, path=path, line=line,
                      col=col, function=function,
                      locks=frozenset(locks), epoch=epoch)


class TestRacesPredicate:
    def test_write_write_no_locks_is_self_race_not_pair(self):
        # Both writes are individually unlocked: each is its own
        # finding; pairing them would restate the same cause.
        a, b = site(line=1, locks=()), site(line=2, locks=())
        assert not rules_race._races(a, b)

    def test_inconsistent_locking_pairs(self):
        a = site(line=1, locks={"lock_a"})
        b = site(line=2, locks={"lock_b"})
        assert rules_race._races(a, b)

    def test_common_lock_orders(self):
        a = site(line=1, locks={"lock", "extra"})
        b = site(line=2, locks={"lock"})
        assert not rules_race._races(a, b)

    def test_read_read_never_races(self):
        a = site(line=1, kind="read")
        b = site(line=2, kind="read")
        assert not rules_race._races(a, b)

    def test_locked_write_vs_unlocked_read_pairs(self):
        a = site(line=1, kind="write", locks={"lock"})
        b = site(line=2, kind="read", locks=())
        assert rules_race._races(a, b)

    def test_barrier_separated_phases_are_ordered(self):
        a = site(line=1, kind="write", locks={"a"}, epoch=0)
        b = site(line=2, kind="write", locks={"b"}, epoch=1)
        assert not rules_race._races(a, b)

    def test_different_functions_epochs_do_not_order(self):
        # Epochs only order accesses within one function's walk.
        a = site(line=1, function="f", locks={"a"}, epoch=0)
        b = site(line=2, function="g", locks={"b"}, epoch=1)
        assert rules_race._races(a, b)

    def test_same_location_never_self_pairs(self):
        a = site(line=1, locks={"x"})
        b = site(line=1, locks={"y"})
        assert not rules_race._races(a, b)


def findings_for(source: str):
    prog = EffectProgram.from_sources(
        [("<t>", textwrap.dedent(source))])
    return rules_race.check_program(prog)


class TestCheckProgram:
    def test_unlocked_write_reports_once_across_roots(self):
        # Two entry kernels reach the same unsynchronized write: one
        # finding, at the site.
        findings = findings_for("""
            def bump(ctx, table, entry):
                table.add_refs(entry, 1)
                yield from ctx.sleep(1)

            def root_a(ctx, table, entry):
                yield from bump(ctx, table, entry)

            def root_b(ctx, table, entry):
                yield from bump(ctx, table, entry)
        """)
        assert len(findings) == 1
        [f] = findings
        assert f.rule == "shared-race"
        assert f.function == "bump"
        assert "unsynchronized" in f.message

    def test_locked_write_is_quiet(self):
        findings = findings_for("""
            def kernel(ctx, table, entry, k):
                yield from ctx.lock(k)
                table.add_refs(entry, 1)
                yield from ctx.unlock(k)
        """)
        assert findings == []

    def test_inconsistent_locks_report_a_pair(self):
        # One root reaches both writes through helpers that take
        # DIFFERENT locks: every write is locked, none in common.
        findings = findings_for("""
            def bump_a(ctx, table, entry, ka):
                yield from ctx.lock(ka)
                table.add_refs(entry, 1)
                yield from ctx.unlock(ka)

            def drop_b(ctx, table, entry, kb):
                yield from ctx.lock(kb)
                table.unref(entry)
                yield from ctx.unlock(kb)

            def kernel(ctx, table, entry, ka, kb):
                yield from bump_a(ctx, table, entry, ka)
                yield from drop_b(ctx, table, entry, kb)
        """)
        [f] = findings
        assert "hold no common lock" in f.message
        assert "write/write" in f.message

    def test_same_lock_everywhere_is_quiet(self):
        findings = findings_for("""
            def bump(ctx, table, entry, k):
                yield from ctx.lock(k)
                table.add_refs(entry, 1)
                yield from ctx.unlock(k)

            def kernel(ctx, table, entry, k):
                yield from bump(ctx, table, entry, k)
                yield from ctx.lock(k)
                table.unref(entry)
                yield from ctx.unlock(k)
        """)
        assert findings == []

    def test_cross_struct_accesses_never_pair(self):
        findings = findings_for("""
            def kernel(ctx, table, entry, cache, fid, fpn, frame, ka, kb):
                yield from ctx.lock(ka)
                table.add_refs(entry, 1)
                yield from ctx.unlock(ka)
                yield from ctx.lock(kb)
                cache.bind(fid, fpn, frame)
                yield from ctx.unlock(kb)
        """)
        assert findings == []

    def test_sites_from_different_roots_never_pair(self):
        # Pairing is per-root by design: two entry kernels that are
        # never proven to co-run do not generate speculative pairs
        # (each one's *own* closed context is what gets checked).
        findings = findings_for("""
            def kernel_a(ctx, table, entry, ka):
                yield from ctx.lock(ka)
                table.add_refs(entry, 1)
                yield from ctx.unlock(ka)

            def kernel_b(ctx, table, entry, kb):
                yield from ctx.lock(kb)
                table.unref(entry)
                yield from ctx.unlock(kb)
        """)
        assert findings == []

    def test_global_memory_is_excluded(self):
        # Raw stores are the runtime torn-write detector's job.
        findings = findings_for("""
            def kernel(ctx, addr):
                yield from ctx.store(addr, 1, "f4")
        """)
        assert findings == []

    def test_barrier_phases_within_one_kernel_are_quiet(self):
        findings = findings_for("""
            def kernel(ctx, table, entry, k):
                yield from ctx.lock(k)
                entry.ready = True
                yield from ctx.unlock(k)
                yield from ctx.syncthreads()
                ready = entry.ready
                yield from ctx.sleep(ready)
        """)
        assert findings == []
