"""Runtime sanitizer: one deliberately broken kernel per invariant.

Each breaking kernel must produce *exactly one* structured
:class:`~repro.analysis.sanitizer.Violation` of the right kind, and
the corrected twin must produce none.  The off-mode tests pin the
zero-cost contract: no sanitizer object, no wrapper contexts, and
bit-identical cycle counts.
"""

import numpy as np
import pytest

from repro.analysis.sanitizer import SanitizedWarpContext
from repro.gpu import Device
from repro.gpu.instructions import TimedLock
from repro.gpu.kernel import WarpContext
from repro.host import HostFileSystem
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig
from repro.telemetry import capture

PAGE = 4096


def make_env(sanitize: bool = True, pages: int = 8):
    device = Device(memory_bytes=32 * 1024 * 1024)
    fs = RamFS()
    fs.create("data", np.arange(pages * PAGE, dtype=np.uint8))
    gpufs = GPUfs(device, HostFileSystem(fs),
                  GPUfsConfig(page_size=PAGE, num_frames=16,
                              sanitize=sanitize))
    fid = gpufs.open("data")
    return device, gpufs, fid


@pytest.fixture
def env():
    return make_env()


class TestLockstep:
    def test_unbalanced_barrier_is_exactly_one_violation(self, env):
        device, gpufs, _ = env

        def kernel(ctx):
            yield from ctx.syncthreads()
            if ctx.warp_in_block == 0:
                yield from ctx.syncthreads()

        device.launch(kernel, grid=1, block_threads=64)
        violations = gpufs.sanitizer.violations
        assert len(violations) == 1
        [v] = violations
        assert v.invariant == "lockstep"
        assert v.block_id == 0
        assert {v.details["barriers"], v.details["expected"]} == {1, 2}

    def test_balanced_barriers_are_clean(self, env):
        device, gpufs, _ = env

        def kernel(ctx):
            yield from ctx.syncthreads()
            yield from ctx.syncthreads()

        device.launch(kernel, grid=2, block_threads=64)
        assert gpufs.sanitizer.violations == []


class TestPinLeak:
    def test_gmmap_without_gmunmap_is_exactly_one_violation(self, env):
        device, gpufs, fid = env

        def kernel(ctx):
            addr = yield from gpufs.gmmap(ctx, fid, 0)
            _ = yield from ctx.load(addr + ctx.lane * 4, "f4")

        device.launch(kernel, grid=1, block_threads=32)
        violations = gpufs.sanitizer.violations
        assert len(violations) == 1
        [v] = violations
        assert v.invariant == "pin-leak"
        assert v.details["pins"] == {f"{fid}:0": 1}

    def test_balanced_pins_are_clean(self, env):
        device, gpufs, fid = env

        def kernel(ctx):
            addr = yield from gpufs.gmmap(ctx, fid, 0)
            _ = yield from ctx.load(addr + ctx.lane * 4, "f4")
            yield from gpufs.gmunmap(ctx, fid, 0)

        device.launch(kernel, grid=1, block_threads=32)
        assert gpufs.sanitizer.violations == []

    def test_undestroyed_apointer_is_exactly_one_violation(self, env):
        from repro.core import APConfig, AVM

        device, gpufs, _ = env
        avm = AVM(APConfig())
        src = device.alloc(PAGE)

        def kernel(ctx):
            ptr = avm.gvmmap_device(ctx, src, PAGE)
            _ = yield from ptr.read(ctx, "f4")
            # missing: yield from ptr.destroy(ctx)

        device.launch(kernel, grid=1, block_threads=32)
        violations = gpufs.sanitizer.violations
        assert len(violations) == 1
        [v] = violations
        assert v.invariant == "pin-leak"
        assert "apointer" in v.message
        assert v.details["linked_lanes"] > 0

    def test_destroyed_apointer_is_clean(self, env):
        from repro.core import APConfig, AVM

        device, gpufs, _ = env
        avm = AVM(APConfig())
        src = device.alloc(PAGE)

        def kernel(ctx):
            ptr = avm.gvmmap_device(ctx, src, PAGE)
            _ = yield from ptr.read(ctx, "f4")
            yield from ptr.destroy(ctx)

        device.launch(kernel, grid=1, block_threads=32)
        assert gpufs.sanitizer.violations == []


class TestTornWrite:
    def test_overlapping_unordered_stores_are_one_violation(self, env):
        device, gpufs, _ = env
        buf = device.alloc(PAGE)

        def kernel(ctx):
            yield from ctx.store(buf + ctx.lane * 4,
                                 np.ones(32, np.float32), "f4")

        device.launch(kernel, grid=1, block_threads=64)
        violations = gpufs.sanitizer.violations
        assert len(violations) == 1
        [v] = violations
        assert v.invariant == "torn-write"
        assert v.details["other_warp"] != v.warp_id

    def test_disjoint_stores_are_clean(self, env):
        device, gpufs, _ = env
        buf = device.alloc(PAGE)

        def kernel(ctx):
            yield from ctx.store(buf + ctx.global_tid * 4,
                                 np.ones(32, np.float32), "f4")

        device.launch(kernel, grid=1, block_threads=64)
        assert gpufs.sanitizer.violations == []

    def test_barrier_orders_the_writes(self, env):
        device, gpufs, _ = env
        buf = device.alloc(PAGE)

        def kernel(ctx):
            if ctx.warp_in_block == 0:
                yield from ctx.store(buf + ctx.lane * 4,
                                     np.ones(32, np.float32), "f4")
            yield from ctx.syncthreads()
            if ctx.warp_in_block == 1:
                yield from ctx.store(buf + ctx.lane * 4,
                                     np.zeros(32, np.float32), "f4")

        device.launch(kernel, grid=1, block_threads=64)
        assert gpufs.sanitizer.violations == []

    def test_common_lock_orders_the_writes(self, env):
        device, gpufs, _ = env
        buf = device.alloc(PAGE)
        lk = TimedLock()

        def kernel(ctx):
            yield from ctx.lock(lk)
            yield from ctx.store(buf + ctx.lane * 4,
                                 np.ones(32, np.float32), "f4")
            yield from ctx.unlock(lk)

        device.launch(kernel, grid=1, block_threads=64)
        assert gpufs.sanitizer.violations == []

    def test_history_does_not_leak_across_launches(self, env):
        device, gpufs, _ = env
        buf = device.alloc(PAGE)

        def kernel(ctx):
            yield from ctx.store(buf + ctx.lane * 4,
                                 np.ones(32, np.float32), "f4")

        # Two sequential single-warp launches write the same bytes;
        # launches are serialized, so this is not a race.
        device.launch(kernel, grid=1, block_threads=32)
        device.launch(kernel, grid=1, block_threads=32)
        assert gpufs.sanitizer.violations == []


class TestZeroCostWhenOff:
    def test_off_mode_installs_nothing(self):
        device, gpufs, _ = make_env(sanitize=False)
        assert gpufs.sanitizer is None
        assert device.sanitizer is None
        seen = []

        def kernel(ctx):
            seen.append(ctx)
            yield from ctx.syncthreads()

        device.launch(kernel, grid=1, block_threads=32)
        assert type(seen[0]) is WarpContext
        assert seen[0].sanitizer is None

    def test_on_mode_wraps_contexts(self, env):
        device, gpufs, _ = env
        seen = []

        def kernel(ctx):
            seen.append(ctx)
            yield from ctx.syncthreads()

        device.launch(kernel, grid=1, block_threads=32)
        assert type(seen[0]) is SanitizedWarpContext
        assert seen[0].sanitizer is gpufs.sanitizer

    def test_sanitizer_is_timing_neutral(self):
        def kernel(ctx, buf):
            v = yield from ctx.load(buf + ctx.global_tid * 4, "f4")
            yield from ctx.store(buf + ctx.global_tid * 4, v + 1, "f4")
            yield from ctx.syncthreads()

        cycles = []
        for sanitize in (False, True):
            device, gpufs, _ = make_env(sanitize=sanitize)
            buf = device.alloc(PAGE * 2)
            r = device.launch(kernel, grid=2, block_threads=64,
                              args=(buf,))
            cycles.append(r.cycles)
        assert cycles[0] == cycles[1]


class TestTelemetryIntegration:
    def test_sanitizer_component_in_profile(self):
        with capture() as prof:
            device, gpufs, fid = make_env()
            buf = device.alloc(PAGE)

            def kernel(ctx):
                yield from ctx.store(buf + ctx.lane * 4,
                                     np.ones(32, np.float32), "f4")

            device.launch(kernel, grid=1, block_threads=64)
        doc = prof.last.to_dict()
        san = doc["components"]["sanitizer"]
        assert san["warps_watched"] == 2
        assert san["torn_writes"] == 1
        assert san["lockstep_violations"] == 0
        assert san["pin_leaks"] == 0

    def test_unsanitized_profile_has_zeroed_section(self):
        with capture() as prof:
            device, gpufs, _ = make_env(sanitize=False)

            def kernel(ctx):
                yield from ctx.syncthreads()

            device.launch(kernel, grid=1, block_threads=32)
        san = prof.last.to_dict()["components"]["sanitizer"]
        assert san["warps_watched"] == 0
        assert san["torn_writes"] == 0
