"""The lint path must never import numpy (or the simulator).

CI runs ``repro-lint`` as a fast job with the scientific stack
deliberately unavailable; this test pins the guarantee by importing
the whole analysis front end in a fresh interpreter and asserting the
forbidden modules never loaded.
"""

import subprocess
import sys

_PROBE = """
import sys
from repro.analysis.linter import lint_paths

result = lint_paths(["src/repro/analysis"])
assert result.files_checked > 5, result.files_checked
assert result.effects is not None

from repro.analysis import baseline, sarif
from repro.analysis.cli import build_parser
build_parser()

forbidden = sorted(
    m for m in sys.modules
    if m == "numpy" or m.startswith("numpy.")
    or m in ("repro.gpu", "repro.paging", "repro.host", "repro.core"))
assert not forbidden, f"lint path imported: {forbidden}"
print("ok")
"""


def test_lint_path_is_stdlib_only():
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True, text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"
