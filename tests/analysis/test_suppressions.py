"""Inline ``# aplint: disable`` suppression semantics."""

import json
import subprocess
import sys
import textwrap

from repro.analysis.linter import lint_paths, lint_source


def _lint(code: str) -> list:
    return lint_source("<test>", textwrap.dedent(code))


#: A line that violates *two* rules at once: an undriven timed
#: generator AND an over-threshold literal cost feed the same call.
_TWO_BUG_LINE = """
    def kernel(ctx, addr):
        ctx.compute(500, chain=500){suffix}
        yield from ctx.fence()
"""


class TestSuppressions:
    def test_both_rules_fire_unsuppressed(self):
        findings = _lint(_TWO_BUG_LINE.format(suffix=""))
        assert {f.rule for f in findings} == {
            "missing-yield-from", "uncalibrated-cost"}

    def test_suppressing_one_rule_keeps_the_other(self):
        # The load-bearing property: a targeted disable only silences
        # the named rule; the second violation on the same line still
        # fires.
        findings = _lint(_TWO_BUG_LINE.format(
            suffix="   # aplint: disable=uncalibrated-cost"))
        assert {f.rule for f in findings} == {"missing-yield-from"}

        findings = _lint(_TWO_BUG_LINE.format(
            suffix="   # aplint: disable=missing-yield-from"))
        assert {f.rule for f in findings} == {"uncalibrated-cost"}

    def test_bare_disable_suppresses_all_on_line(self):
        findings = _lint(_TWO_BUG_LINE.format(
            suffix="   # aplint: disable"))
        assert not findings

    def test_multi_rule_directive(self):
        findings = _lint(_TWO_BUG_LINE.format(
            suffix="   # aplint: disable=missing-yield-from,"
                   "uncalibrated-cost"))
        assert not findings

    def test_suppression_is_line_scoped(self):
        findings = _lint("""
            def kernel(ctx, addr):
                ctx.load(addr, "f4")   # aplint: disable=missing-yield-from
                ctx.store(addr, 0, "f4")
        """)
        assert [f.rule for f in findings] == ["missing-yield-from"]
        assert findings[0].line == 4

    def test_unknown_rule_name_is_reported(self):
        # A typoed directive must not silently disable nothing.
        findings = _lint("""
            def kernel(ctx, addr):
                v = yield from ctx.load(addr, "f4")   # aplint: disable=misspelled-rule
        """)
        assert [f.rule for f in findings] == ["bad-suppression"]


class TestFileLevelDirectives:
    def test_disable_file_silences_the_rule_everywhere(self):
        findings = _lint("""
            # aplint: disable-file missing-yield-from

            def kernel_a(ctx, addr):
                ctx.load(addr, "f4")
                yield from ctx.fence()

            def kernel_b(ctx, addr):
                ctx.store(addr, 0, "f4")
                yield from ctx.fence()
        """)
        assert not findings

    def test_disable_file_is_rule_scoped(self):
        # Other rules on the same lines keep firing.
        findings = _lint(_TWO_BUG_LINE.format(suffix="") +
                         "    # aplint: disable-file uncalibrated-cost\n")
        assert {f.rule for f in findings} == {"missing-yield-from"}

    def test_disable_file_unknown_rule_is_reported(self):
        findings = _lint("""
            # aplint: disable-file not-a-rule

            def kernel(ctx, n):
                yield from ctx.sleep(n)
        """)
        assert [f.rule for f in findings] == ["bad-suppression"]

    def test_there_is_no_file_wide_disable_all(self):
        # ``disable-file`` with no rule name is malformed by design.
        findings = _lint("""
            # aplint: disable-file

            def kernel(ctx, n):
                yield from ctx.sleep(n)
        """)
        assert [f.rule for f in findings] == ["bad-suppression"]


class TestUnusedSuppressions:
    def test_dead_line_pragma_is_reported(self):
        findings = _lint("""
            def kernel(ctx, n):
                yield from ctx.sleep(n)   # aplint: disable=missing-yield-from
        """)
        [f] = findings
        assert f.rule == "unused-suppression"
        assert "disable=missing-yield-from" in f.message
        assert f.line == 3

    def test_dead_file_pragma_is_reported(self):
        findings = _lint("""
            # aplint: disable-file lock-order

            def kernel(ctx, n):
                yield from ctx.sleep(n)
        """)
        [f] = findings
        assert f.rule == "unused-suppression"
        assert "disable-file lock-order" in f.message

    def test_used_pragmas_are_quiet(self):
        findings = _lint(_TWO_BUG_LINE.format(
            suffix="   # aplint: disable=missing-yield-from,"
                   "uncalibrated-cost"))
        assert not findings

    def test_bare_disable_that_matches_is_quiet(self):
        findings = _lint(_TWO_BUG_LINE.format(
            suffix="   # aplint: disable"))
        assert not findings

    def test_dead_bare_disable_is_reported(self):
        findings = _lint("""
            def kernel(ctx, n):
                yield from ctx.sleep(n)   # aplint: disable
        """)
        [f] = findings
        assert f.rule == "unused-suppression"
        assert "'# aplint: disable'" in f.message


class TestCLI:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv],
            capture_output=True, text=True)

    def test_clean_file_exits_zero(self, tmp_path):
        f = tmp_path / "good.py"
        f.write_text("def kernel(ctx, a):\n"
                     "    v = yield from ctx.load(a, 'f4')\n")
        proc = self._run(str(f))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_findings_exit_one_and_json_shape(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("def kernel(ctx, a):\n"
                     "    ctx.load(a, 'f4')\n"
                     "    yield from ctx.fence()\n")
        proc = self._run("--format=json", str(f))
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["files_checked"] == 1
        [finding] = doc["findings"]
        assert finding["rule"] == "missing-yield-from"
        assert finding["line"] == 2
        assert finding["function"] == "kernel"

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for rule in ("missing-yield-from", "divergent-yield",
                     "aptr-lifecycle", "lock-order",
                     "uncalibrated-cost"):
            assert rule in proc.stdout


class TestRepoIsClean:
    def test_shipped_tree_lints_clean(self):
        # The acceptance gate CI enforces: the repository's own
        # kernels, examples and benchmarks carry zero findings beyond
        # the committed baseline (shared-race is a may-analysis; the
        # accepted per-warp-disjoint reports live in
        # lint-baseline.json and the ratchet fails only on NEW debt).
        from repro.analysis import baseline as baseline_mod
        result = lint_paths(["src/repro", "examples", "benchmarks"])
        assert result.files_checked > 50
        assert result.kernels_checked > 50
        assert not result.errors
        entries = baseline_mod.load("lint-baseline.json")
        assert entries, "committed lint baseline is missing or empty"
        new, _stale = baseline_mod.compare(result.findings, entries)
        assert new == []
        # Every surviving finding is shared-race debt - the other
        # rules hold unconditionally on the shipped tree.
        assert {f.rule for f in result.findings} <= {"shared-race"}
