"""Tests for problem generation and the reference solution."""

import numpy as np
import pytest

from repro.collage import (
    CollageDataset,
    DatasetParams,
    make_problem,
    reference_solution,
)


@pytest.fixture(scope="module")
def dataset():
    return CollageDataset(DatasetParams(num_images=512, num_clusters=8))


@pytest.fixture(scope="module")
def problem(dataset):
    return make_problem(dataset, blocks_x=4, blocks_y=4, cluster_spread=3)


class TestProblem:
    def test_block_count(self, problem):
        assert problem.num_blocks == 16

    def test_image_shape(self, problem):
        assert problem.image.shape == (4 * 32, 4 * 32, 3)

    def test_candidates_per_block(self, problem):
        assert len(problem.candidates) == 16

    def test_deterministic(self, dataset):
        a = make_problem(dataset, blocks_x=2, blocks_y=2, seed=1)
        b = make_problem(dataset, blocks_x=2, blocks_y=2, seed=1)
        assert np.array_equal(a.image, b.image)

    def test_reuse_increases_with_concentration(self, dataset):
        focused = make_problem(dataset, blocks_x=6, blocks_y=6,
                               cluster_spread=1)
        spread = make_problem(dataset, blocks_x=6, blocks_y=6,
                              cluster_spread=8)
        assert focused.data_reuse() >= spread.data_reuse()

    def test_reuse_definition(self, problem):
        manual = (problem.total_candidate_refs()
                  / problem.unique_candidates())
        assert problem.data_reuse() == pytest.approx(manual)


class TestReferenceSolution:
    def test_choices_shape_and_membership(self, problem):
        ref = reference_solution(problem)
        assert ref.choices.shape == (16,)
        for b, choice in enumerate(ref.choices):
            if choice >= 0:
                assert choice in problem.candidates[b]

    def test_choice_is_argmin_among_candidates(self, problem, dataset):
        ref = reference_solution(problem)
        for b in range(problem.num_blocks):
            cands = problem.candidates[b]
            if cands.size == 0:
                continue
            q = problem.block_hists[b].astype(np.float64)
            d = ((dataset.histograms[cands] - q) ** 2).sum(axis=1)
            assert ref.choices[b] == cands[np.argmin(d)]

    def test_empty_candidates_give_minus_one(self, dataset):
        problem = make_problem(dataset, blocks_x=2, blocks_y=2)
        problem.candidates = [np.empty(0, np.int64)] * problem.num_blocks
        ref = reference_solution(problem)
        assert np.all(ref.choices == -1)
