"""Tests for the synthetic dataset generator and file layout."""

import numpy as np
import pytest

from repro.collage.dataset import CollageDataset, DatasetParams
from repro.collage.histogram import HIST_BYTES, HIST_FLOATS


@pytest.fixture(scope="module")
def dataset():
    return CollageDataset(DatasetParams(num_images=256, num_clusters=8))


class TestDataset:
    def test_histogram_count_and_shape(self, dataset):
        assert dataset.histograms.shape == (256, HIST_FLOATS)

    def test_deterministic(self):
        a = CollageDataset(DatasetParams(num_images=64, num_clusters=4))
        b = CollageDataset(DatasetParams(num_images=64, num_clusters=4))
        assert np.array_equal(a.histograms, b.histograms)

    def test_histograms_nonnegative(self, dataset):
        assert (dataset.histograms >= 0).all()

    def test_order_is_a_permutation(self, dataset):
        assert np.array_equal(np.sort(dataset.order), np.arange(256))

    def test_file_roundtrip_aligned(self, dataset):
        blob = dataset.file_bytes()
        assert blob.size == 256 * 4096
        for img in (0, 100, 255):
            off = dataset.record_offset(img)
            back = blob[off:off + HIST_BYTES].view(np.float32)
            assert np.array_equal(back, dataset.histograms[img])

    def test_file_roundtrip_unaligned(self):
        ds = CollageDataset(DatasetParams(num_images=64, num_clusters=4,
                                          aligned=False))
        blob = ds.file_bytes()
        assert blob.size == 64 * HIST_BYTES
        for img in (0, 31, 63):
            off = ds.record_offset(img)
            assert off % HIST_BYTES == 0
            back = blob[off:off + HIST_BYTES].view(np.float32)
            assert np.array_equal(back, ds.histograms[img])

    def test_unaligned_records_straddle_pages(self):
        """The point of the §VI-E experiment: 3 KB records are not
        page-aligned, so some straddle 4 KB boundaries."""
        ds = CollageDataset(DatasetParams(num_images=64, num_clusters=4,
                                          aligned=False))
        offsets = [ds.record_offset(i) for i in range(64)]
        straddling = [o for o in offsets
                      if o // 4096 != (o + HIST_BYTES - 1) // 4096]
        assert straddling

    def test_bucket_order_groups_bucket_members(self, dataset):
        """Records of one primary bucket are contiguous in the file."""
        table0 = dataset.lsh.buckets[0]
        for key, members in table0.items():
            positions = sorted(dataset.position_of[m] for m in members)
            assert positions == list(range(positions[0],
                                           positions[0] + len(positions)))

    def test_candidates_nonempty_for_dataset_members(self, dataset):
        assert dataset.candidates_for(dataset.histograms[5]).size > 0

    def test_clustered_structure_gives_reuse(self, dataset):
        """Queries near one cluster share most of their candidates."""
        c = dataset.centers[0]
        a = dataset.candidates_for(c * 1.0)
        b = dataset.candidates_for(c * 1.02)
        if a.size and b.size:
            overlap = np.intersect1d(a, b).size / max(a.size, b.size)
            assert overlap > 0.5
