"""Tests for block histograms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collage.histogram import (
    BLOCK_SIDE,
    HIST_BINS,
    HIST_BYTES,
    HIST_FLOATS,
    block_histograms,
    euclidean_distances,
    histogram_of_block,
)


class TestHistogramOfBlock:
    def test_mass_equals_pixels_per_channel(self):
        rng = np.random.RandomState(0)
        block = rng.randint(0, 256, (32, 32, 3), dtype=np.uint8)
        h = histogram_of_block(block)
        for c in range(3):
            assert h[c * HIST_BINS:(c + 1) * HIST_BINS].sum() == 32 * 32

    def test_uniform_block_is_single_bin(self):
        block = np.full((32, 32, 3), 7, dtype=np.uint8)
        h = histogram_of_block(block)
        assert h[7] == 1024
        assert h[HIST_BINS + 7] == 1024
        assert h.sum() == 3 * 1024

    def test_record_is_3kb(self):
        assert HIST_FLOATS * 4 == HIST_BYTES == 3072

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            histogram_of_block(np.zeros((32, 32), dtype=np.uint8))

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_matches_numpy_histogram(self, seed):
        rng = np.random.RandomState(seed)
        block = rng.randint(0, 256, (32, 32, 3), dtype=np.uint8)
        h = histogram_of_block(block)
        for c in range(3):
            ref, _ = np.histogram(block[:, :, c], bins=256, range=(0, 256))
            assert np.array_equal(h[c * 256:(c + 1) * 256], ref)


class TestBlockHistograms:
    def test_block_count(self):
        image = np.zeros((64, 96, 3), dtype=np.uint8)
        assert block_histograms(image).shape == (2 * 3, HIST_FLOATS)

    def test_crops_partial_blocks(self):
        image = np.zeros((40, 40, 3), dtype=np.uint8)
        assert block_histograms(image).shape == (1, HIST_FLOATS)

    def test_image_too_small_rejected(self):
        with pytest.raises(ValueError):
            block_histograms(np.zeros((8, 8, 3), dtype=np.uint8))

    def test_blocks_are_independent(self):
        image = np.zeros((32, 64, 3), dtype=np.uint8)
        image[:, 32:] = 200
        hists = block_histograms(image)
        assert hists[0][0] == 1024      # left block all zeros
        assert hists[1][200] == 1024    # right block all 200s


class TestDistances:
    def test_zero_distance_to_self(self):
        h = np.arange(HIST_FLOATS, dtype=np.float32)
        assert euclidean_distances(h, h[None, :])[0] == 0.0

    def test_matches_norm(self):
        rng = np.random.RandomState(1)
        q = rng.rand(HIST_FLOATS).astype(np.float32)
        c = rng.rand(5, HIST_FLOATS).astype(np.float32)
        expect = np.linalg.norm(c.astype(np.float64) - q, axis=1)
        assert np.allclose(euclidean_distances(q, c), expect)
