"""Tests for the LSH index."""

import numpy as np
import pytest

from repro.collage.histogram import HIST_FLOATS
from repro.collage.lsh import LSHIndex, LSHParams


@pytest.fixture
def vectors():
    rng = np.random.RandomState(2)
    return rng.uniform(0, 50, size=(400, HIST_FLOATS)).astype(np.float32)


@pytest.fixture
def index(vectors):
    idx = LSHIndex(LSHParams(tables=4, projections=4))
    idx.build(vectors)
    return idx


class TestLSHIndex:
    def test_every_vector_lands_in_a_bucket_per_table(self, index,
                                                      vectors):
        for t in range(index.params.tables):
            total = sum(len(v) for v in index.buckets[t].values())
            assert total == len(vectors)

    def test_self_is_always_a_candidate(self, index, vectors):
        for i in (0, 17, 399):
            assert i in index.candidates_for(vectors[i])

    def test_keys_are_deterministic(self, vectors):
        a = LSHIndex(LSHParams(seed=9))
        b = LSHIndex(LSHParams(seed=9))
        assert a.keys_for(vectors[:5]) == b.keys_for(vectors[:5])

    def test_different_seeds_differ(self, vectors):
        a = LSHIndex(LSHParams(seed=9))
        b = LSHIndex(LSHParams(seed=10))
        assert a.keys_for(vectors[:5]) != b.keys_for(vectors[:5])

    def test_near_vectors_collide_more_than_far(self, vectors):
        """The LSH property: nearby points share buckets more often."""
        idx = LSHIndex(LSHParams(tables=6, projections=3))
        idx.build(vectors)
        rng = np.random.RandomState(3)
        near_hits = far_hits = 0
        for i in range(100):
            v = vectors[i]
            near = v + rng.normal(0, 1.0, HIST_FLOATS)
            far = rng.uniform(0, 50, HIST_FLOATS)
            near_hits += i in idx.candidates_for(near)
            far_hits += i in idx.candidates_for(far)
        assert near_hits > far_hits

    def test_candidates_are_unique_and_sorted(self, index, vectors):
        cands = index.candidates_for(vectors[0])
        assert np.array_equal(cands, np.unique(cands))

    def test_hash_flops_positive(self, index):
        assert index.hash_flops() == 2 * 4 * 4 * HIST_FLOATS

    def test_candidates_smaller_than_dataset(self, index, vectors):
        """LSH narrows the search — the whole point of §VI-E."""
        mean = np.mean([index.candidates_for(v).size
                        for v in vectors[:50]])
        assert mean < len(vectors) * 0.8
