"""Collage runners under non-default apointer configurations.

The end-to-end application must stay correct whatever translation-layer
configuration is selected — short pointers, TLB on, compiler variant —
since §VI-E's point is that the application code never changes.
"""

import pytest

from repro.collage import (
    CollageDataset,
    DatasetParams,
    make_problem,
    reference_solution,
    run_gpufs_apointers,
)
from repro.core import APConfig, ImplVariant, PtrFormat


@pytest.fixture(scope="module")
def problem():
    dataset = CollageDataset(DatasetParams(num_images=384,
                                           num_clusters=8))
    return make_problem(dataset, blocks_x=3, blocks_y=3,
                        cluster_spread=3)


@pytest.fixture(scope="module")
def reference(problem):
    return reference_solution(problem)


class TestConfigurations:
    @pytest.mark.parametrize("variant", [ImplVariant.COMPILER,
                                         ImplVariant.PREFETCH])
    def test_variants_produce_identical_collage(self, problem, reference,
                                                variant):
        out = run_gpufs_apointers(problem,
                                  config=APConfig(variant=variant))
        assert out.matches(reference)

    def test_short_format(self, problem, reference):
        out = run_gpufs_apointers(
            problem, config=APConfig(fmt=PtrFormat.SHORT))
        assert out.matches(reference)

    def test_compiler_variant_is_slowest(self, problem):
        slow = run_gpufs_apointers(
            problem, config=APConfig(variant=ImplVariant.COMPILER))
        fast = run_gpufs_apointers(
            problem, config=APConfig(variant=ImplVariant.PREFETCH))
        assert fast.seconds <= slow.seconds * 1.02

    def test_team_width_does_not_change_result(self, problem, reference):
        for team in (1, 2, 8):
            out = run_gpufs_apointers(problem, team_warps=team)
            assert out.matches(reference), f"team={team}"

    def test_small_page_cache_still_correct(self, problem, reference):
        out = run_gpufs_apointers(problem, page_cache_frames=48)
        assert out.matches(reference)
        assert out.paging["evictions"] > 0
