"""Integration tests: all four collage runners agree and show the
paper's qualitative ordering."""

import pytest

from repro.collage import (
    CollageDataset,
    DatasetParams,
    make_problem,
    reference_solution,
    run_cpu,
    run_cpu_gpu,
    run_gpufs,
    run_gpufs_apointers,
)


@pytest.fixture(scope="module")
def problem():
    dataset = CollageDataset(DatasetParams(num_images=512,
                                           num_clusters=12))
    return make_problem(dataset, blocks_x=4, blocks_y=4,
                        cluster_spread=4)


@pytest.fixture(scope="module")
def reference(problem):
    return reference_solution(problem)


@pytest.fixture(scope="module")
def outcomes(problem):
    return {
        out.name: out
        for out in (run_cpu(problem), run_cpu_gpu(problem),
                    run_gpufs(problem), run_gpufs_apointers(problem))
    }


class TestCorrectness:
    @pytest.mark.parametrize("name", ["CPU", "CPU+GPU", "GPUfs",
                                      "GPUfs+AP"])
    def test_matches_reference(self, outcomes, reference, name):
        assert outcomes[name].matches(reference)

    def test_all_runners_positive_time(self, outcomes):
        for out in outcomes.values():
            assert out.seconds > 0

    def test_gpufs_reports_paging_stats(self, outcomes):
        assert outcomes["GPUfs"].paging["major"] > 0
        assert outcomes["GPUfs+AP"].paging["major"] > 0


class TestTimingShape:
    def test_ap_overhead_is_small(self, outcomes):
        """§VI-E: apointers add no substantial overhead over GPUfs."""
        ratio = (outcomes["GPUfs+AP"].seconds
                 / outcomes["GPUfs"].seconds)
        assert ratio < 1.15

    def test_breakdowns_sum_to_total(self, outcomes):
        for name in ("CPU", "CPU+GPU"):
            out = outcomes[name]
            assert sum(out.breakdown.values()) == pytest.approx(
                out.seconds, rel=0.02)


class TestUnaligned:
    def test_unaligned_dataset_same_kernel(self):
        """§VI-E: removing the padding (3 KB records) requires no
        apointer code changes and still yields the right collage."""
        dataset = CollageDataset(DatasetParams(
            num_images=256, num_clusters=8, aligned=False))
        problem = make_problem(dataset, blocks_x=3, blocks_y=3,
                               cluster_spread=3)
        ref = reference_solution(problem)
        out = run_gpufs_apointers(problem)
        assert out.matches(ref)
