"""Shared fixtures for the ActivePointers core tests."""

import numpy as np
import pytest

from repro.core import APConfig, AVM
from repro.gpu import Device
from repro.host import HostFileSystem
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig

PAGE = 4096
FILE_PAGES = 32


@pytest.fixture
def file_bytes():
    return np.random.RandomState(3).randint(
        0, 256, FILE_PAGES * PAGE, dtype=np.uint8)


@pytest.fixture
def device():
    return Device(memory_bytes=64 * 1024 * 1024)


@pytest.fixture
def gpufs(device, file_bytes):
    fs = RamFS()
    fs.create("data", file_bytes)
    return GPUfs(device, HostFileSystem(fs),
                 GPUfsConfig(page_size=PAGE, num_frames=16))


def make_avm(gpufs=None, **kwargs) -> AVM:
    return AVM(APConfig(**kwargs), gpufs=gpufs)


def launch(device, kernel, *args, grid=1, block_threads=32,
           scratchpad_bytes=0):
    return device.launch(kernel, grid=grid, block_threads=block_threads,
                         args=args, scratchpad_bytes=scratchpad_bytes)
