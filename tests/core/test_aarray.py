"""Tests for the AArray typed-array layer over apointers."""

import numpy as np
import pytest

from repro.core.aarray import AArray
from tests.core.conftest import PAGE, launch, make_avm


@pytest.fixture
def filled_gpufs(gpufs, file_bytes):
    return gpufs


class TestGetSet:
    def test_scalar_index_broadcasts(self, device, gpufs, file_bytes):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")
        seen = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
            arr = AArray(ptr, "u4")
            seen.append((yield from arr.get(ctx, 5)))
            yield from ptr.destroy(ctx)

        launch(device, kern)
        expect = file_bytes[20:24].view(np.uint32)[0]
        assert np.all(seen[0] == expect)

    def test_per_lane_indices(self, device, gpufs, file_bytes):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")
        seen = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
            arr = AArray(ptr, "u4")
            seen.append((yield from arr.get(ctx, ctx.lane * 7)))
            yield from ptr.destroy(ctx)

        launch(device, kern)
        all_u32 = file_bytes.view(np.uint32)
        assert np.array_equal(seen[0], all_u32[np.arange(32) * 7])

    def test_set_then_get(self, device, gpufs):
        from repro.host.filesys import O_RDWR
        avm = make_avm(gpufs)
        fid = gpufs.open("data", O_RDWR)
        seen = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid, write=True)
            arr = AArray(ptr, "u4")
            yield from arr.set(ctx, ctx.lane + 100,
                               ctx.lane.astype(np.uint32) * 3)
            seen.append((yield from arr.get(ctx, ctx.lane + 100)))
            yield from ptr.destroy(ctx)

        launch(device, kern)
        assert np.array_equal(seen[0], np.arange(32, dtype=np.uint32) * 3)

    def test_index_out_of_range(self, device, gpufs):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")

        def kern(ctx):
            ptr = avm.gvmmap(ctx, PAGE, fid)
            arr = AArray(ptr, "u4")
            yield from arr.get(ctx, len(arr))

        with pytest.raises(IndexError):
            launch(device, kern)

    def test_length_from_mapping(self, device, gpufs):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")
        lengths = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 2 * PAGE, fid)
            lengths.append(len(AArray(ptr, "u4")))
            lengths.append(len(AArray(ptr, "f8")))
            yield from ctx.flush()

        launch(device, kern)
        assert lengths == [2 * PAGE // 4, 2 * PAGE // 8]

    def test_explicit_length_validated(self, device, gpufs):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")

        def kern(ctx):
            ptr = avm.gvmmap(ctx, PAGE, fid)
            AArray(ptr, "u4", length=PAGE)  # too many elements
            yield from ctx.flush()

        with pytest.raises(ValueError):
            launch(device, kern)


class TestBlocks:
    def test_get_block(self, device, gpufs, file_bytes):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")
        seen = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
            arr = AArray(ptr, "f4")
            seen.append((yield from arr.get_block(ctx, 64, 4)))
            yield from ptr.destroy(ctx)

        launch(device, kern)
        expect = file_bytes[64 * 4:64 * 4 + 512].view(np.float32)
        assert np.array_equal(seen[0].reshape(-1), expect)

    def test_set_block_roundtrip(self, device, gpufs):
        from repro.host.filesys import O_RDWR
        avm = make_avm(gpufs)
        fid = gpufs.open("data", O_RDWR)
        seen = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid, write=True)
            arr = AArray(ptr, "f4")
            vals = np.arange(128, dtype=np.float32).reshape(32, 4)
            yield from arr.set_block(ctx, 0, vals)
            seen.append((yield from arr.get_block(ctx, 0, 4)))
            yield from ptr.destroy(ctx)

        launch(device, kern)
        assert np.array_equal(seen[0].reshape(-1),
                              np.arange(128, dtype=np.float32))

    def test_block_out_of_range(self, device, gpufs):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")

        def kern(ctx):
            ptr = avm.gvmmap(ctx, PAGE, fid)
            arr = AArray(ptr, "u4")
            yield from arr.get_block(ctx, len(arr) - 16, 4)

        with pytest.raises(IndexError):
            launch(device, kern)


class TestView:
    def test_view_offsets_indices(self, device, gpufs, file_bytes):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")
        seen = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
            arr = AArray(ptr, "u4")
            sub = arr.view(1024, length=256)
            seen.append((yield from sub.get(ctx, 0)))
            yield from ptr.destroy(ctx)

        launch(device, kern)
        expect = file_bytes[4096:4100].view(np.uint32)[0]
        assert np.all(seen[0] == expect)
        # The view faults the second page, not the first.
