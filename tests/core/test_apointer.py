"""Tests for the APtr state machine, arithmetic, dereference, and the
reference-counting invariants of §III-B."""

import numpy as np
import pytest

from repro.core import APConfig, APtrState, PtrFormat
from repro.core.apointer import BoundsError, ProtectionError
from tests.core.conftest import PAGE, launch, make_avm


class TestStateMachine:
    def test_fresh_pointer_is_unlinked(self, device, gpufs, file_bytes):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")
        states = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
            states.append(ptr.state)
            yield from ptr.read(ctx, "u4")
            states.append(ptr.state)

        launch(device, kern)
        assert states == [APtrState.UNLINKED, APtrState.LINKED]

    def test_first_access_faults_second_does_not(self, device, gpufs):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
            yield from ptr.read(ctx, "u4")
            yield from ptr.read(ctx, "u4")
            yield from ptr.read(ctx, "u4")

        launch(device, kern)
        assert avm.stats.fault_groups == 1
        assert avm.stats.derefs == 3

    def test_crossing_page_boundary_unlinks(self, device, gpufs):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")
        states = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
            yield from ptr.read(ctx, "u4")
            yield from ptr.add(ctx, PAGE)          # off the linked page
            states.append(ptr.state)
            yield from ptr.add(ctx, -PAGE)         # back, still unlinked
            states.append(ptr.state)
            yield from ptr.destroy(ctx)

        launch(device, kern)
        assert states == [APtrState.UNLINKED, APtrState.UNLINKED]
        assert avm.stats.unlinks == 32

    def test_moving_within_page_stays_linked(self, device, gpufs):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")
        states = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
            yield from ptr.seek(ctx, ctx.lane * 4)
            yield from ptr.read(ctx, "u4")
            yield from ptr.add(ctx, 128)
            states.append(ptr.state)
            yield from ptr.destroy(ctx)

        launch(device, kern)
        assert states == [APtrState.LINKED]
        assert avm.stats.fault_groups == 1

    def test_clone_is_unlinked_copy(self, device, gpufs):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")
        out = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
            yield from ptr.add(ctx, 64)
            yield from ptr.read(ctx, "u4")
            twin = ptr.clone(ctx)
            out.append((twin.state, twin.pos.copy(), ptr.state))
            yield from ptr.destroy(ctx)

        launch(device, kern)
        twin_state, twin_pos, orig_state = out[0]
        assert twin_state == APtrState.UNLINKED
        assert orig_state == APtrState.LINKED
        assert np.all(twin_pos == 64)

    def test_mixed_state_when_lanes_diverge(self, device, gpufs):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")
        states = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
            yield from ptr.seek(ctx, ctx.lane * 4)
            yield from ptr.read(ctx, "u4")
            # Half the lanes step onto the next page (and unlink).
            delta = np.where(ctx.lane < 16, PAGE, 0)
            yield from ptr.add(ctx, delta)
            states.append(ptr.state)
            yield from ptr.destroy(ctx)

        launch(device, kern)
        assert states == [APtrState.MIXED]


class TestFunctionalAccess:
    def test_read_returns_file_contents(self, device, gpufs, file_bytes):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")
        seen = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
            yield from ptr.seek(ctx, ctx.lane * 4)
            seen.append((yield from ptr.read(ctx, "u4")))
            yield from ptr.destroy(ctx)

        launch(device, kern)
        assert np.array_equal(seen[0], file_bytes[:128].view(np.uint32))

    def test_write_reaches_backing_file_via_flush(self, device, gpufs):
        from repro.host.filesys import O_RDWR
        avm = make_avm(gpufs)
        fid = gpufs.open("data", O_RDWR)

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid, write=True)
            yield from ptr.seek(ctx, ctx.lane * 4)
            yield from ptr.write(ctx, np.full(32, 99, np.uint32), "u4")
            yield from ptr.destroy(ctx)
            yield from gpufs.flush(ctx)

        launch(device, kern)
        back = gpufs.host_fs.ramfs.open("data").pread(0, 128).view(np.uint32)
        assert np.all(back == 99)

    def test_unaligned_mapping_reads_across_pages(self, device, gpufs,
                                                  file_bytes):
        """The §VI-E usability point: records not aligned to page
        boundaries are read through plain pointer arithmetic."""
        avm = make_avm(gpufs)
        fid = gpufs.open("data")
        seen = []
        record = 3072  # 3 KB records straddle 4 KB pages

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 16 * PAGE, fid)
            for r in range(4):
                yield from ptr.seek(ctx, r * record + ctx.lane * 4)
                seen.append((r, (yield from ptr.read(ctx, "u4"))))
            yield from ptr.destroy(ctx)

        launch(device, kern)
        for r, vals in seen:
            exp = file_bytes[r * record:r * record + 128].view(np.uint32)
            assert np.array_equal(vals, exp)

    def test_lanes_in_different_pages_read_correctly(self, device,
                                                     file_bytes):
        # 32 simultaneously pinned pages need a cache larger than the
        # default 16-frame fixture.
        from repro.host import HostFileSystem
        from repro.host.ramfs import RamFS
        from repro.paging import GPUfs, GPUfsConfig
        fs = RamFS()
        fs.create("data", file_bytes)
        gpufs = GPUfs(device, HostFileSystem(fs),
                      GPUfsConfig(page_size=PAGE, num_frames=64))
        avm = make_avm(gpufs)
        fid = gpufs.open("data")
        seen = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 32 * PAGE, fid)
            yield from ptr.seek(ctx, ctx.lane * PAGE)  # 32 distinct pages
            seen.append((yield from ptr.read(ctx, "u4")))
            yield from ptr.destroy(ctx)

        launch(device, kern)
        exp = np.array([file_bytes[l * PAGE:l * PAGE + 4].view(np.uint32)[0]
                        for l in range(32)])
        assert np.array_equal(seen[0], exp)


class TestAggregation:
    def test_one_fault_group_per_distinct_page(self, device, gpufs):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
            # Lanes split across 4 pages: 4 sequential fault groups.
            yield from ptr.seek(ctx, (ctx.lane % 4) * PAGE)
            yield from ptr.read(ctx, "u4")
            yield from ptr.destroy(ctx)

        launch(device, kern)
        assert avm.stats.fault_groups == 4
        assert avm.stats.translation_faults == 32

    def test_refcount_aggregated_per_warp(self, device, gpufs):
        """§III-D: the count is incremented by the number of lanes that
        access the page, not once per lane."""
        avm = make_avm(gpufs)
        fid = gpufs.open("data")
        counts = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
            yield from ptr.seek(ctx, ctx.lane * 4)
            yield from ptr.read(ctx, "u4")
            entry = gpufs.cache.table.get(fid, 0)
            counts.append(entry.refcount)
            yield from ptr.destroy(ctx)

        launch(device, kern)
        assert counts[0] == 32
        assert gpufs.cache.table.get(fid, 0).refcount == 0

    def test_active_page_survives_cache_pressure(self, device, gpufs,
                                                 file_bytes):
        """A linked apointer's page is never evicted even when other
        accesses sweep the whole cache (16 frames, 32-page file)."""
        avm = make_avm(gpufs)
        fid = gpufs.open("data")
        ok = []

        def kern(ctx):
            held = avm.gvmmap(ctx, 32 * PAGE, fid)
            yield from held.seek(ctx, ctx.lane * 4)
            first = yield from held.read(ctx, "u4")
            sweep = avm.gvmmap(ctx, 32 * PAGE, fid)
            for p in range(1, 32):
                yield from sweep.seek(ctx, p * PAGE)
                yield from sweep.read(ctx, "u4")
            again = yield from held.read(ctx, "u4")  # still linked: no fault
            ok.append(np.array_equal(first, again))
            yield from held.destroy(ctx)
            yield from sweep.destroy(ctx)

        launch(device, kern)
        assert ok[0]
        assert gpufs.cache.evictions > 0  # pressure was real


class TestProtectionAndBounds:
    def test_write_through_readonly_raises(self, device, gpufs):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid, write=False)
            yield from ptr.write(ctx, np.zeros(32, np.uint32), "u4")

        with pytest.raises(ProtectionError):
            launch(device, kern)

    def test_out_of_bounds_read_raises(self, device, gpufs):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")

        def kern(ctx):
            ptr = avm.gvmmap(ctx, PAGE, fid)
            yield from ptr.add(ctx, PAGE)
            yield from ptr.read(ctx, "u4")

        with pytest.raises(BoundsError):
            launch(device, kern)

    def test_negative_position_raises(self, device, gpufs):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")

        def kern(ctx):
            ptr = avm.gvmmap(ctx, PAGE, fid)
            yield from ptr.add(ctx, -4)
            yield from ptr.read(ctx, "u4")

        with pytest.raises(BoundsError):
            launch(device, kern)

    def test_straddling_access_rejected(self, device, gpufs):
        avm = make_avm(gpufs)
        fid = gpufs.open("data")

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 2 * PAGE, fid)
            yield from ptr.add(ctx, PAGE - 2)
            yield from ptr.read(ctx, "u4")

        with pytest.raises(BoundsError):
            launch(device, kern)


class TestEncodedWord:
    @pytest.mark.parametrize("fmt", [PtrFormat.LONG, PtrFormat.SHORT])
    def test_word_tracks_state(self, device, gpufs, fmt):
        from repro.core import translation as tr
        avm = make_avm(gpufs, fmt=fmt)
        fid = gpufs.open("data")
        words = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
            words.append(("unlinked", ptr.encoded_word().copy()))
            yield from ptr.read(ctx, "u4")
            words.append(("linked", ptr.encoded_word().copy()))
            yield from ptr.destroy(ctx)

        launch(device, kern)
        for label, word in words:
            valid = (word & tr.VALID_BIT) != 0
            assert valid.all() == (label == "linked")

    def test_short_format_costs_more_instructions(self):
        from repro.core.calibration import cost_model_for
        long_cm = cost_model_for(APConfig(fmt=PtrFormat.LONG))
        short_cm = cost_model_for(APConfig(fmt=PtrFormat.SHORT))
        assert short_cm.fmt_extra_count > long_cm.fmt_extra_count


class TestDirectBackend:
    def test_device_mapping_roundtrip(self, device):
        avm = make_avm()
        base = device.alloc(8 * PAGE)
        device.memory.write(base, np.arange(PAGE * 2, dtype=np.uint32))
        seen = []

        def kern(ctx):
            ptr = avm.gvmmap_device(ctx, base, 8 * PAGE)
            yield from ptr.seek(ctx, ctx.lane * 4)
            seen.append((yield from ptr.read(ctx, "u4")))
            yield from ptr.write(ctx, np.full(32, 5, np.uint32), "u4")
            yield from ptr.destroy(ctx)

        launch(device, kern)
        assert np.array_equal(seen[0], np.arange(32, dtype=np.uint32))
        back = device.memory.read(base, 128).view(np.uint32)
        assert np.all(back == 5)

    def test_no_gpufs_required(self, device):
        avm = make_avm()
        with pytest.raises(RuntimeError, match="no GPUfs"):

            def kern(ctx):
                avm.gvmmap(ctx, PAGE, 3)
                yield from ctx.flush()

            launch(device, kern)
