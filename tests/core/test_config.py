"""Tests for APConfig, cost models, and APStats."""

import pytest

from repro.core import APConfig, APStats, ImplVariant, PtrFormat
from repro.core.calibration import cost_model_for, raw_cost_model


class TestAPConfig:
    def test_defaults_are_the_papers_best(self):
        cfg = APConfig()
        assert cfg.variant is ImplVariant.PREFETCH
        assert cfg.fmt is PtrFormat.LONG
        assert not cfg.use_tlb          # §VI-C: best without a TLB
        assert not cfg.perm_checks      # §VI-A: disabled after Table I

    def test_tlb_entry_bytes(self):
        short = APConfig(fmt=PtrFormat.SHORT)
        long_ = APConfig(fmt=PtrFormat.LONG)
        assert short.tlb_entry_bytes() == 12 + 4
        assert long_.tlb_entry_bytes() == 20 + 4

    def test_tlb_bytes_zero_when_disabled(self):
        assert APConfig(use_tlb=False).tlb_bytes() == 0
        assert APConfig(use_tlb=True).tlb_bytes() > 0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            APConfig().use_tlb = True


class TestCostModels:
    def test_raw_increment_is_two_instructions(self):
        """§VI-A: 'only 2 for a simple pointer increment'."""
        assert raw_cost_model().arith_count == 2

    def test_apointer_increment_is_eighteen(self):
        """§VI-A: 'the most efficient apointer implementation uses 18
        instructions' (software variants; HW_ASSISTED is the §VII
        what-if and is cheaper by construction)."""
        for variant in (ImplVariant.COMPILER, ImplVariant.OPTIMIZED_PTX,
                        ImplVariant.PREFETCH):
            cm = cost_model_for(APConfig(variant=variant))
            assert cm.arith_count == 18
        hw = cost_model_for(APConfig(variant=ImplVariant.HW_ASSISTED))
        assert hw.arith_count < 18

    def test_prefetch_has_no_serial_pre_chain(self):
        cm = cost_model_for(APConfig(variant=ImplVariant.PREFETCH))
        assert cm.deref_chain == 0
        assert cm.deref_overlap > 0

    def test_compiler_chain_longest(self):
        chains = {v: cost_model_for(APConfig(variant=v)).deref_chain
                  for v in ImplVariant}
        assert chains[ImplVariant.COMPILER] > chains[
            ImplVariant.OPTIMIZED_PTX] > chains[ImplVariant.PREFETCH]             == chains[ImplVariant.HW_ASSISTED]

    def test_short_format_adds_packing_cost(self):
        long_ = cost_model_for(APConfig(fmt=PtrFormat.LONG))
        short = cost_model_for(APConfig(fmt=PtrFormat.SHORT))
        assert short.fmt_extra_count > long_.fmt_extra_count == 0

    def test_memcpy_iteration_near_105_instructions(self):
        """§VI-A SASS inspection: 'the apointer access involves 105
        instructions' per copy iteration (2 derefs + 2 increments)."""
        cm = cost_model_for(APConfig(variant=ImplVariant.PREFETCH))
        per_iter = 2 * (cm.deref_count + 1) + 2 * cm.arith_count
        assert per_iter == pytest.approx(105, abs=15)


class TestAPStats:
    def test_hit_rate(self):
        s = APStats(tlb_hits=3, tlb_misses=1)
        assert s.tlb_hit_rate() == 0.75

    def test_hit_rate_no_lookups(self):
        assert APStats().tlb_hit_rate() == 0.0

    def test_reset(self):
        s = APStats(derefs=5, links=2)
        s.reset()
        assert s.derefs == 0 and s.links == 0
