"""Tests for the per-threadblock software TLB and its refcount
aggregation semantics (§III-E, §IV-D)."""

import pytest

from repro.core import APConfig
from repro.core.tlb import SoftwareTLB
from repro.gpu.memory import Scratchpad
from tests.core.conftest import PAGE, launch, make_avm


def drive(device, gen_fn, *args):
    out = []

    def kern(ctx):
        out.append((yield from gen_fn(ctx, *args)))

    device.launch(kern, grid=1, block_threads=32)
    return out[0]


@pytest.fixture
def tlb():
    return SoftwareTLB(entries=8, entry_bytes=24, scratchpad=Scratchpad(1024))


class TestConstruction:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            SoftwareTLB(entries=12, entry_bytes=24,
                        scratchpad=Scratchpad(1024))

    def test_scratchpad_footprint_claimed(self):
        sp = Scratchpad(1024)
        SoftwareTLB(entries=32, entry_bytes=24, scratchpad=sp)
        assert sp.bytes_used == 32 * 24

    def test_paper_sizes(self):
        """§IV-D: 32 entries cost 512 B (short) / 768 B (long) plus a
        4 B lock per entry."""
        from repro.core.config import PtrFormat
        short_cfg = APConfig(use_tlb=True, fmt=PtrFormat.SHORT)
        long_cfg = APConfig(use_tlb=True, fmt=PtrFormat.LONG)
        assert short_cfg.tlb_bytes() == 32 * (12 + 4)
        assert long_cfg.tlb_bytes() == 32 * (20 + 4)


class TestLookupInstall:
    def test_miss_then_install_then_hit(self, device, tlb):
        assert drive(device, tlb.lookup_and_ref, 1, 5, 32) is None
        installed, evicted = drive(device, tlb.install, 1, 5, 0xF000, 32)
        assert installed and evicted is None
        assert drive(device, tlb.lookup_and_ref, 1, 5, 32) == 0xF000
        assert tlb.stats.tlb_hits == 1
        assert tlb.stats.tlb_misses == 1

    def test_install_merges_same_key(self, device, tlb):
        drive(device, tlb.install, 1, 5, 0xF000, 10)
        installed, evicted = drive(device, tlb.install, 1, 5, 0xF000, 7)
        assert installed and evicted is None
        assert tlb._table[tlb._slot(1, 5)].tb_refs == 17
        assert tlb._table[tlb._slot(1, 5)].global_held == 17

    def test_conflicting_entry_with_refs_bypasses(self, device):
        tlb = SoftwareTLB(entries=1, entry_bytes=24,
                          scratchpad=Scratchpad(64))
        drive(device, tlb.install, 1, 0, 0xA000, 5)
        installed, evicted = drive(device, tlb.install, 1, 1, 0xB000, 5)
        assert not installed
        assert tlb.stats.tlb_bypasses == 1
        # The original entry is intact.
        assert drive(device, tlb.lookup_and_ref, 1, 0, 1) == 0xA000

    def test_zero_ref_entry_evicted_on_conflict(self, device):
        tlb = SoftwareTLB(entries=1, entry_bytes=24,
                          scratchpad=Scratchpad(64))
        drive(device, tlb.install, 1, 0, 0xA000, 5)
        drive(device, tlb.unref, 1, 0, 5)
        installed, evicted = drive(device, tlb.install, 1, 1, 0xB000, 3)
        assert installed
        assert evicted == ((1, 0), 5)  # caller releases 5 global refs
        assert tlb.stats.tlb_evictions == 1


class TestUnref:
    def test_unref_unknown_key_returns_false(self, device, tlb):
        assert not drive(device, tlb.unref, 9, 9, 1)

    def test_unref_underflow_raises(self, device, tlb):
        drive(device, tlb.install, 1, 0, 0xA000, 2)
        with pytest.raises(RuntimeError, match="underflow"):
            drive(device, tlb.unref, 1, 0, 3)

    def test_zero_ref_entry_stays_cached(self, device, tlb):
        """The TLB's payoff: a drained entry still serves lookups."""
        drive(device, tlb.install, 1, 0, 0xA000, 2)
        drive(device, tlb.unref, 1, 0, 2)
        assert drive(device, tlb.lookup_and_ref, 1, 0, 4) == 0xA000


class TestDrain:
    def test_drain_returns_all_pins(self, device, tlb):
        # Pick two pages that land in different direct-mapped slots.
        second = next(x for x in range(1, 100)
                      if tlb._slot(1, x) != tlb._slot(1, 0))
        drive(device, tlb.install, 1, 0, 0xA000, 2)
        drive(device, tlb.install, 1, second, 0xB000, 3)
        released = drive(device, tlb.drain)
        assert sorted(released) == sorted([((1, 0), 2), ((1, second), 3)])
        assert drive(device, tlb.lookup_and_ref, 1, 0, 1) is None


class TestEndToEndWithTLB:
    def test_reuse_hits_tlb_and_global_refs_balance(self, device, gpufs,
                                                    file_bytes):
        cfg_kwargs = dict(use_tlb=True, tlb_entries=32)
        avm = make_avm(gpufs, **cfg_kwargs)
        fid = gpufs.open("data")

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
            yield from ptr.seek(ctx, ctx.lane * 4)
            for rep in range(4):
                yield from ptr.read(ctx, "u4")
                yield from ptr.add(ctx, PAGE)       # unlink
                yield from ptr.add(ctx, -PAGE)      # come back: refault
            yield from ptr.destroy(ctx)
            yield from ctx.syncthreads()
            if ctx.warp_in_block == 0:
                yield from avm.drain_tlb(ctx, ptr.backend)

        launch(device, kern, block_threads=64,
               scratchpad_bytes=avm.config.tlb_bytes())
        assert avm.stats.tlb_hits > 0
        for entry in gpufs.cache.table.entries():
            assert entry.refcount == 0

    def test_tlb_saves_page_table_lookups(self, device, gpufs):
        """With high reuse, the TLB absorbs refaults that would
        otherwise hit the global page table."""
        results = {}
        for use_tlb in (False, True):
            gpufs.cache.table.lookups = 0
            avm = make_avm(gpufs, use_tlb=use_tlb)
            fid = gpufs.open("data")

            def kern(ctx):
                ptr = avm.gvmmap(ctx, 8 * PAGE, fid)
                for rep in range(8):
                    yield from ptr.seek(ctx, ctx.lane * 4)
                    yield from ptr.read(ctx, "u4")
                    yield from ptr.add(ctx, PAGE)
                yield from ptr.destroy(ctx)
                yield from ctx.syncthreads()
                if use_tlb and ctx.warp_in_block == 0:
                    yield from avm.drain_tlb(ctx, ptr.backend)

            launch(device, kern, block_threads=64,
                   scratchpad_bytes=avm.config.tlb_bytes())
            results[use_tlb] = gpufs.cache.table.lookups
        assert results[True] < results[False]
