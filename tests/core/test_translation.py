"""Tests for translation-field bit packing (§IV-A/B)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import translation as tr
from repro.core.config import PtrFormat


class TestLongFormat:
    def test_roundtrip(self):
        valid = np.array([True, False, True])
        addr = np.array([0, 123456, (1 << 60) - 1], dtype=np.uint64)
        word = tr.encode_long(valid, tr.perm_bits(True, False), addr)
        v, a = tr.decode_long(word)
        assert np.array_equal(v, valid)
        assert np.array_equal(a, addr)

    def test_address_overflow_rejected(self):
        with pytest.raises(tr.AddressRangeError):
            tr.encode_long(np.array([True]), np.uint64(0),
                           np.array([1 << 60], dtype=np.uint64))

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, (1 << 60) - 1)),
                    min_size=1, max_size=32))
    def test_roundtrip_property(self, lanes):
        valid = np.array([v for v, _ in lanes])
        addr = np.array([a for _, a in lanes], dtype=np.uint64)
        v, a = tr.decode_long(
            tr.encode_long(valid, tr.perm_bits(True, True), addr))
        assert np.array_equal(v, valid)
        assert np.array_equal(a, addr)


class TestShortFormat:
    def test_roundtrip(self):
        valid = np.array([True, False])
        aphys = np.array([0xDEADBEEF, 42], dtype=np.uint64)
        xpage = np.array([7, (1 << 29) - 1], dtype=np.uint64)
        word = tr.encode_short(valid, np.uint64(0), aphys, xpage)
        v, a, x = tr.decode_short(word)
        assert np.array_equal(v, valid)
        assert np.array_equal(a, aphys)
        assert np.array_equal(x, xpage)

    def test_aphys_overflow_rejected(self):
        with pytest.raises(tr.AddressRangeError):
            tr.encode_short(np.array([True]), np.uint64(0),
                            np.array([1 << 32], dtype=np.uint64),
                            np.array([0], dtype=np.uint64))

    def test_xpage_overflow_rejected(self):
        with pytest.raises(tr.AddressRangeError):
            tr.encode_short(np.array([True]), np.uint64(0),
                            np.array([0], dtype=np.uint64),
                            np.array([1 << 29], dtype=np.uint64))

    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(0, (1 << 32) - 1),
                              st.integers(0, (1 << 29) - 1)),
                    min_size=1, max_size=32))
    def test_roundtrip_property(self, lanes):
        valid = np.array([v for v, _, _ in lanes])
        aphys = np.array([a for _, a, _ in lanes], dtype=np.uint64)
        xpage = np.array([x for _, _, x in lanes], dtype=np.uint64)
        v, a, x = tr.decode_short(
            tr.encode_short(valid, tr.perm_bits(False, True), aphys, xpage))
        assert np.array_equal(v, valid)
        assert np.array_equal(a, aphys)
        assert np.array_equal(x, xpage)


class TestPermissions:
    def test_perm_bits_independent(self):
        word = tr.encode_long(np.array([False]),
                              tr.perm_bits(True, False),
                              np.array([0], dtype=np.uint64))
        assert tr.has_perm(word, write=False)[0]
        assert not tr.has_perm(word, write=True)[0]

    def test_perms_do_not_corrupt_address(self):
        addr = np.array([(1 << 60) - 1], dtype=np.uint64)
        word = tr.encode_long(np.array([True]), tr.perm_bits(True, True),
                              addr)
        _, a = tr.decode_long(word)
        assert a[0] == addr[0]


class TestAddressSpaceSizes:
    def test_long_address_space_is_60_bits(self):
        assert tr.max_mappable_bytes(PtrFormat.LONG, 4096) == 1 << 60

    def test_short_address_space_trades_range(self):
        """§IV-B: short apointers balance address-space size against
        TLB size and runtime overhead."""
        short = tr.max_mappable_bytes(PtrFormat.SHORT, 4096)
        assert short == (1 << 29) * 4096  # 2 TB of file
        assert short < tr.max_mappable_bytes(PtrFormat.LONG, 4096)
        # Still comfortably enough for the paper's 40 GB dataset.
        assert short > 40 * (1 << 30)
