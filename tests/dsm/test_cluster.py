"""Integration tests for the DSM cluster with apointer access."""

import numpy as np
import pytest

from repro.core import APConfig, AVM
from repro.dsm import DSMCluster
from repro.dsm.cluster import ActivePageRevocationError
from repro.dsm.directory import PageState

PAGE = 4096


@pytest.fixture
def cluster():
    return DSMCluster(num_devices=2, region_bytes=8 * PAGE,
                      frames_per_device=16)


def run_on(cluster, dev, body):
    """Launch a one-warp kernel on device ``dev`` with a mapped ptr."""
    avm = AVM(APConfig())
    backend = cluster.backend_for(dev)

    def kern(ctx):
        ptr = avm.map_backend(ctx, backend, cluster.region_bytes,
                              write=True)
        yield from body(ctx, ptr)
        yield from ptr.destroy(ctx)

    return cluster.devices[dev].launch(kern, grid=1, block_threads=32)


class TestBasicSharing:
    def test_write_then_remote_read(self, cluster):
        def writer(ctx, ptr):
            yield from ptr.seek(ctx, ctx.lane * 4)
            yield from ptr.write(ctx, np.full(32, 42, np.uint32), "u4")

        seen = []

        def reader(ctx, ptr):
            yield from ptr.seek(ctx, ctx.lane * 4)
            seen.append((yield from ptr.read(ctx, "u4")))

        run_on(cluster, 0, writer)
        run_on(cluster, 1, reader)
        assert np.all(seen[0] == 42)
        assert cluster.stats.flushes == 1

    def test_ping_pong_ownership(self, cluster):
        """Alternating writers migrate the page back and forth."""
        for round_ in range(4):
            dev = round_ % 2

            def bump(ctx, ptr):
                yield from ptr.seek(ctx, ctx.lane * 4)
                v = yield from ptr.read(ctx, "u4")
                yield from ptr.write(ctx, v + 1, "u4")

            run_on(cluster, dev, bump)
        final = cluster.region_array()[:128].view(np.uint32)
        # The last writer's copy may still be dirty; force a read that
        # flushes it.
        seen = []

        def check(ctx, ptr):
            yield from ptr.seek(ctx, ctx.lane * 4)
            seen.append((yield from ptr.read(ctx, "u4")))

        run_on(cluster, 0, check)
        assert np.all(seen[0] == 4)
        assert cluster.stats.flushes >= 3

    def test_readers_share_without_flushes(self, cluster):
        def reader(ctx, ptr):
            yield from ptr.seek(ctx, ctx.lane * 4)
            yield from ptr.read(ctx, "u4")

        run_on(cluster, 0, reader)
        run_on(cluster, 1, reader)
        assert cluster.stats.flushes == 0
        assert cluster.directory.state_of(0) is PageState.SHARED
        assert cluster.directory.holders_of(0) == {0, 1}

    def test_upgrade_fault_reaches_directory(self, cluster):
        """Read-then-write on one device must become EXCLUSIVE even
        though the pointer was already linked (the upgrade fault)."""
        def read_then_write(ctx, ptr):
            yield from ptr.seek(ctx, ctx.lane * 4)
            v = yield from ptr.read(ctx, "u4")
            yield from ptr.write(ctx, v + 7, "u4")

        run_on(cluster, 0, read_then_write)
        assert cluster.directory.state_of(0) is PageState.EXCLUSIVE
        assert cluster.directory.holders_of(0) == {0}


class TestCoherenceInvariant:
    def test_check_coherent_after_traffic(self, cluster):
        rng = np.random.RandomState(4)

        def scribble(dev_seed):
            def body(ctx, ptr):
                r = np.random.RandomState(dev_seed)
                for _ in range(6):
                    page = int(r.randint(0, 8))
                    yield from ptr.seek(ctx, page * PAGE + ctx.lane * 4)
                    if r.rand() < 0.5:
                        v = yield from ptr.read(ctx, "u4")
                        yield from ptr.write(ctx, v + 1, "u4")
                    else:
                        yield from ptr.read(ctx, "u4")
            return body

        for round_ in range(4):
            run_on(cluster, round_ % 2, scribble(round_))
        assert cluster.check_coherent()

    def test_active_page_cannot_be_revoked(self, cluster):
        """The fixed-mapping guarantee extends across the cluster: an
        invalidation targeting a referenced page is an error."""
        # Pin page 0 on device 1 by taking a reference directly.
        gpufs1 = cluster.gpufs[1]

        def pin(ctx):
            yield from gpufs1.gmmap(ctx, cluster.fids[1], 0)

        cluster.devices[1].launch(pin, grid=1, block_threads=32)
        cluster.directory.acquire_read(0, 1)

        def writer(ctx, ptr):
            yield from ptr.seek(ctx, ctx.lane * 4)
            yield from ptr.write(ctx, np.full(32, 1, np.uint32), "u4")

        with pytest.raises(ActivePageRevocationError):
            run_on(cluster, 0, writer)


class TestFlushBudget:
    def test_flush_wait_on_lost_page_in_raises(self, cluster):
        """A flush waiting on a page-in that never completes must fail
        loudly within its cycle budget instead of spinning forever."""
        from repro.dsm import DSMFlushTimeoutError
        from repro.paging.page_table import PageTableEntry

        # Fabricate a lost page-in on device 0: an entry stuck not-ready
        # with no transfer that will ever complete it.
        gpufs0 = cluster.gpufs[0]
        stuck = PageTableEntry(cluster.fids[0], 0, frame=0, ready=False)
        gpufs0.cache.table.host_insert(stuck)
        gpufs0.cache.bind(stuck)
        cluster.FLUSH_WAIT_BUDGET_CYCLES = 10_000.0  # keep the test fast

        def kern(ctx):
            yield from cluster.flush_page(ctx, 0, 0)

        with pytest.raises(DSMFlushTimeoutError, match="page-in still"):
            cluster.devices[1].launch(kern, grid=1, block_threads=32)

    def test_flush_waits_out_inflight_page_in(self, cluster):
        """Within budget, a flush still waits for a page-in to finish."""
        gpufs0 = cluster.gpufs[0]
        entry_holder = []

        def kern(ctx):
            if ctx.warp_id == 0:
                # A real page-in on device 0's timeline...
                yield from gpufs0.gmmap(ctx, cluster.fids[0], 0)
                yield from gpufs0.gmunmap(ctx, cluster.fids[0], 0)
            else:
                # ...while the flush path waits for it to become ready.
                while not entry_holder:
                    e = gpufs0.cache.table.get(cluster.fids[0], 0)
                    if e is not None:
                        entry_holder.append(e)
                        break
                    yield from ctx.sleep(50.0)
                yield from cluster.flush_page(ctx, 0, 0)

        cluster.devices[0].launch(kern, grid=1, block_threads=64)
        assert cluster.stats.flushes == 1
        assert entry_holder[0].ready


class TestConcurrent:
    def test_concurrent_disjoint_writers(self, cluster):
        """Both GPUs run at the same time on disjoint pages of the
        shared region (multi-GPU co-simulation)."""
        from repro.gpu.multigpu import ClusterLaunch, launch_cluster

        def make_writer(dev, pages):
            avm = AVM(APConfig())
            backend = cluster.backend_for(dev)

            def kern(ctx):
                ptr = avm.map_backend(ctx, backend,
                                      cluster.region_bytes, write=True)
                for p in pages:
                    yield from ptr.seek(ctx, p * PAGE + ctx.lane * 4)
                    yield from ptr.write(
                        ctx, np.full(32, dev + 10, np.uint32), "u4")
                yield from ptr.destroy(ctx)
                yield from cluster.gpufs[dev].flush(ctx)

            return kern

        launch_cluster([
            ClusterLaunch(cluster.devices[0], make_writer(0, [0, 1]),
                          1, 32),
            ClusterLaunch(cluster.devices[1], make_writer(1, [2, 3]),
                          1, 32),
        ])
        store = cluster.region_array()
        for p, expect in ((0, 10), (1, 10), (2, 11), (3, 11)):
            vals = store[p * PAGE:p * PAGE + 128].view(np.uint32)
            assert np.all(vals == expect), p
        assert cluster.check_coherent()

    def test_concurrent_producer_consumer_read_sharing(self, cluster):
        """One device reads pages the other wrote in an earlier phase
        while both are running — the read-fault flush path under true
        concurrency."""
        from repro.gpu.multigpu import ClusterLaunch, launch_cluster

        # Phase 1: device 0 writes pages 0-3 (left dirty in its cache).
        avm0 = AVM(APConfig())
        b0 = cluster.backend_for(0)

        def writer(ctx):
            ptr = avm0.map_backend(ctx, b0, cluster.region_bytes,
                                   write=True)
            for p in range(4):
                yield from ptr.seek(ctx, p * PAGE + ctx.lane * 4)
                yield from ptr.write(ctx, np.full(32, 99, np.uint32),
                                     "u4")
            yield from ptr.destroy(ctx)

        cluster.devices[0].launch(writer, grid=1, block_threads=32)

        # Phase 2 (concurrent): device 0 computes on pages 4-7 while
        # device 1 reads pages 0-3, forcing flushes of device 0's dirty
        # copies mid-run.
        seen = []
        avm1 = AVM(APConfig())
        b1 = cluster.backend_for(1)

        def reader(ctx):
            ptr = avm1.map_backend(ctx, b1, cluster.region_bytes)
            for p in range(4):
                yield from ptr.seek(ctx, p * PAGE + ctx.lane * 4)
                seen.append((yield from ptr.read(ctx, "u4")).copy())
            yield from ptr.destroy(ctx)

        def busy(ctx):
            ptr = avm0.map_backend(ctx, b0, cluster.region_bytes,
                                   write=True)
            for p in range(4, 8):
                yield from ptr.seek(ctx, p * PAGE + ctx.lane * 4)
                yield from ptr.write(ctx, np.full(32, 7, np.uint32),
                                     "u4")
            yield from ptr.destroy(ctx)

        launch_cluster([
            ClusterLaunch(cluster.devices[0], busy, 1, 32),
            ClusterLaunch(cluster.devices[1], reader, 1, 32),
        ])
        for vals in seen:
            assert np.all(vals == 99)
        assert cluster.stats.flushes >= 4


class TestConstruction:
    def test_unaligned_region_rejected(self):
        with pytest.raises(ValueError):
            DSMCluster(num_devices=2, region_bytes=PAGE + 1)

    def test_region_starts_zeroed(self, cluster):
        assert not cluster.region_array().any()
