"""Unit and property tests for the MSI directory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsm.directory import Directory, PageState


@pytest.fixture
def d():
    return Directory(num_devices=3)


class TestReads:
    def test_first_read_shares(self, d):
        actions = d.acquire_read(0, 1)
        assert actions == {}
        assert d.state_of(0) is PageState.SHARED
        assert d.holders_of(0) == {1}

    def test_many_readers_share(self, d):
        d.acquire_read(0, 0)
        d.acquire_read(0, 1)
        d.acquire_read(0, 2)
        assert d.holders_of(0) == {0, 1, 2}

    def test_read_after_remote_write_flushes_owner(self, d):
        d.acquire_write(0, 2)
        actions = d.acquire_read(0, 0)
        assert actions == {"flush": 2}
        assert d.state_of(0) is PageState.SHARED
        assert d.holders_of(0) == {0, 2}

    def test_owner_rereading_keeps_exclusive(self, d):
        d.acquire_write(0, 1)
        actions = d.acquire_read(0, 1)
        assert actions == {}
        assert d.state_of(0) is PageState.EXCLUSIVE


class TestWrites:
    def test_first_write_is_exclusive(self, d):
        actions = d.acquire_write(0, 1)
        assert actions == {"invalidate": []}
        assert d.state_of(0) is PageState.EXCLUSIVE

    def test_write_invalidates_readers(self, d):
        d.acquire_read(0, 0)
        d.acquire_read(0, 2)
        actions = d.acquire_write(0, 1)
        assert sorted(actions["invalidate"]) == [0, 2]
        assert d.holders_of(0) == {1}

    def test_write_steals_from_writer(self, d):
        d.acquire_write(0, 2)
        actions = d.acquire_write(0, 0)
        assert actions["flush"] == 2
        assert actions["invalidate"] == [2]
        assert d.holders_of(0) == {0}

    def test_writer_rewriting_is_silent(self, d):
        d.acquire_write(0, 1)
        actions = d.acquire_write(0, 1)
        assert "flush" not in actions
        assert actions["invalidate"] == []

    def test_upgrade_invalidates_other_readers_only(self, d):
        d.acquire_read(0, 0)
        d.acquire_read(0, 1)
        actions = d.acquire_write(0, 0)
        assert actions["invalidate"] == [1]


class TestRelease:
    def test_last_release_goes_idle(self, d):
        d.acquire_read(0, 1)
        d.release(0, 1, flushed=False)
        assert d.state_of(0) is PageState.IDLE

    def test_writer_release_leaves_readers_shared(self, d):
        d.acquire_write(0, 1)
        d.acquire_read(0, 2)   # downgrades
        d.release(0, 1, flushed=True)
        assert d.state_of(0) is PageState.SHARED
        assert d.holders_of(0) == {2}

    def test_unknown_device_rejected(self, d):
        with pytest.raises(ValueError):
            d.acquire_read(0, 7)

    def test_zero_devices_rejected(self):
        with pytest.raises(ValueError):
            Directory(0)


class TestInvariants:
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["r", "w", "rel"]),
                  st.integers(0, 2), st.integers(0, 3)),
        min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_msi_invariants_hold(self, ops):
        """Whatever the op sequence: an exclusive page has exactly one
        holder, a shared page at least one, an idle page none."""
        d = Directory(num_devices=3)
        for op, dev, fpn in ops:
            if op == "r":
                d.acquire_read(fpn, dev)
            elif op == "w":
                d.acquire_write(fpn, dev)
            else:
                d.release(fpn, dev, flushed=False)
            state = d.state_of(fpn)
            holders = d.holders_of(fpn)
            if state is PageState.EXCLUSIVE:
                assert len(holders) == 1
            elif state is PageState.SHARED:
                assert len(holders) >= 1
            else:
                assert not holders
