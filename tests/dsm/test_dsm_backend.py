"""Focused tests for the DSMBackend fault/release interface."""

import pytest

from repro.dsm import DSMCluster

PAGE = 4096


@pytest.fixture
def cluster():
    return DSMCluster(num_devices=3, region_bytes=4 * PAGE,
                      frames_per_device=8)


def drive(cluster, dev, gen_fn, *args):
    out = []

    def kern(ctx):
        out.append((yield from gen_fn(ctx, *args)))

    cluster.devices[dev].launch(kern, grid=1, block_threads=32)
    return out[0]


class TestBackendInterface:
    def test_backend_exposes_mapping_contract(self, cluster):
        b = cluster.backend_for(1)
        assert b.page_size == PAGE
        assert b.paged
        assert b.device is cluster.devices[1]

    def test_fault_returns_local_frame(self, cluster):
        b = cluster.backend_for(0)
        addr = drive(cluster, 0, b.fault, 0, 4, False)
        cache = cluster.gpufs[0].cache
        assert cache.base <= addr < cache.base + 8 * PAGE
        entry = cache.table.get(cluster.fids[0], 0)
        assert entry.refcount == 4

    def test_release_drops_refs(self, cluster):
        b = cluster.backend_for(0)
        drive(cluster, 0, b.fault, 0, 4, False)
        drive(cluster, 0, b.release, 0, 4)
        assert cluster.gpufs[0].cache.table.get(
            cluster.fids[0], 0).refcount == 0

    def test_three_device_sharing(self, cluster):
        for dev in range(3):
            b = cluster.backend_for(dev)
            drive(cluster, dev, b.fault, 1, 1, False)
            drive(cluster, dev, b.release, 1, 1)
        assert cluster.directory.holders_of(1) == {0, 1, 2}

    def test_write_fault_invalidates_all_readers(self, cluster):
        for dev in (1, 2):
            b = cluster.backend_for(dev)
            drive(cluster, dev, b.fault, 0, 1, False)
            drive(cluster, dev, b.release, 0, 1)
        b0 = cluster.backend_for(0)
        drive(cluster, 0, b0.fault, 0, 1, True)
        assert cluster.directory.holders_of(0) == {0}
        # Victims' cached copies were dropped.
        for dev in (1, 2):
            assert cluster.gpufs[dev].cache.table.get(
                cluster.fids[dev], 0) is None

    def test_stats_track_fault_kinds(self, cluster):
        b = cluster.backend_for(0)
        drive(cluster, 0, b.fault, 0, 1, False)
        drive(cluster, 0, b.fault, 1, 1, True)
        assert cluster.stats.read_faults == 1
        assert cluster.stats.write_faults == 1
