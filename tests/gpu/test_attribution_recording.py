"""Engine-side attribution recording: stall/issue/translation events.

The recording is an overlay — it must never perturb simulated time
(traced and untraced launches produce bit-identical cycle counts), and
its events must be consistent enough for the analyzer: stalls carry
reasons, translation events carry the ``iss=..;lat=..;hid=..`` detail,
and activity tags from the translation / paging layers reach the
stall reasons.
"""

import pytest

from repro.core import APConfig, AVM
from repro.gpu import Device
from repro.gpu.instructions import TimedLock
from repro.gpu.trace import ATTRIBUTION_KINDS, Tracer, render_timeline
from repro.telemetry.attribution import _parse_translation_detail
from repro.workloads import run_memcpy


def _launch_memcpy(traced: bool, *, use_apointers=True):
    """Run a tiny memcpy; returns (cycles, tracer-or-None).

    ``run_memcpy`` launches internally, so the tracer is hooked in
    ambiently through the profiler when requested.
    """
    device = Device(memory_bytes=32 * 1024 * 1024)
    if not traced:
        r = run_memcpy(device, use_apointers=use_apointers, width=4,
                       nblocks=2, warps_per_block=4, iters_per_thread=4)
        return r.cycles, None
    from repro.telemetry import capture
    with capture(trace=True, max_traces=1) as prof:
        r = run_memcpy(device, use_apointers=use_apointers, width=4,
                       nblocks=2, warps_per_block=4, iters_per_thread=4)
    return r.cycles, prof.traces[0]


class TestZeroDrift:
    @pytest.mark.parametrize("use_apointers", [True, False])
    def test_tracer_does_not_change_timing(self, use_apointers):
        plain, _ = _launch_memcpy(False, use_apointers=use_apointers)
        traced, tracer = _launch_memcpy(True,
                                        use_apointers=use_apointers)
        assert tracer is not None and tracer.events
        assert traced == plain    # exactly — not approx

    def test_untraced_launch_records_no_overlay(self):
        device = Device(memory_bytes=8 * 1024 * 1024)

        def kern(ctx):
            yield from ctx.compute(5)
            yield from ctx.load(src + ctx.lane * 4, "f4")

        src = device.alloc(4096)
        result = device.launch(kern, grid=1, block_threads=32)
        assert result.cycles > 0


class TestStallRecording:
    @pytest.fixture(scope="class")
    def traced(self):
        _, tracer = _launch_memcpy(True)
        return tracer

    def test_overlay_kinds_present(self, traced):
        kinds = {e.kind for e in traced.events}
        assert ATTRIBUTION_KINDS <= kinds

    def test_stalls_carry_reasons(self, traced):
        reasons = {e.detail for e in traced.events if e.kind == "stall"}
        assert "memory" in reasons
        assert all(reasons), "every stall event must name a reason"

    def test_activity_tags_reach_stall_reasons(self):
        # Requests yielded under push_activity() carry the activity as
        # their stall reason instead of the mechanical default
        # ("exec_dependency" for compute).
        device = Device(memory_bytes=8 * 1024 * 1024)
        tracer = Tracer()

        def kern(ctx):
            ctx.push_activity("translation")
            try:
                yield from ctx.compute(100, chain=100)
            finally:
                ctx.pop_activity()
            yield from ctx.compute(100, chain=100)

        device.launch(kern, grid=1, block_threads=32, tracer=tracer)
        reasons = {e.detail for e in tracer.events
                   if e.kind == "stall"}
        assert "translation" in reasons
        assert "exec_dependency" in reasons

    def test_fault_wait_activity_from_paging_layer(self):
        # Major faults run under the paging layer's "fault_wait"
        # activity: the PCIe wait must be attributed to it rather
        # than to a bare "io".
        from repro.telemetry import capture
        from repro.workloads.filebench import make_file_env

        npages, page = 4, 4096
        with capture(trace=True, max_traces=1) as prof:
            device, gpufs, fid, _ = make_file_env(
                npages * page, num_frames=npages + 4,
                memory_bytes=npages * page + 32 * 1024 * 1024)

            def kern(ctx):
                for p in range(npages):
                    yield from gpufs.gmmap(ctx, fid, p * page)
                    yield from gpufs.gmunmap(ctx, fid, p * page)

            device.launch(kern, grid=1, block_threads=32)
        tracer = prof.traces[0]
        reasons = {e.detail for e in tracer.events
                   if e.kind == "stall"}
        assert "fault_wait" in reasons

    def test_issue_events_on_known_sms(self, traced):
        issues = [e for e in traced.events if e.kind == "issue"]
        assert issues
        assert all(e.sm >= 0 for e in issues)
        assert all(e.duration > 0 for e in issues)

    def test_translation_details_parse_and_are_sane(self, traced):
        trs = [e for e in traced.events if e.kind == "translation"]
        assert trs
        for e in trs:
            iss, lat, hid = _parse_translation_detail(e.detail)
            assert iss >= 0 and lat >= 0 and hid >= 0
            assert iss + lat + hid > 0   # engine skips all-zero events

    def test_overlay_does_not_pollute_timeline(self, traced):
        art = render_timeline(traced, width=40)
        assert "?" not in art


class TestBarrierAndLockStalls:
    def test_barrier_wait_recorded(self):
        device = Device(memory_bytes=8 * 1024 * 1024)
        tracer = Tracer()

        def kern(ctx):
            # Warp 0 computes 200 cycles, warp 1 arrives immediately:
            # warp 1 must log a barrier stall while it waits.
            if ctx.warp_id == 0:
                yield from ctx.compute(200, chain=200)
            yield from ctx.syncthreads()

        device.launch(kern, grid=1, block_threads=64, tracer=tracer)
        barriers = [e for e in tracer.events
                    if e.kind == "stall" and e.detail == "barrier"]
        assert barriers
        assert max(e.duration for e in barriers) > 0

    def test_contended_lock_wait_recorded(self):
        device = Device(memory_bytes=8 * 1024 * 1024)
        tracer = Tracer()
        lock = TimedLock("t")

        def kern(ctx, lock):
            yield from ctx.lock(lock)
            yield from ctx.sleep(50)
            yield from ctx.unlock(lock)

        device.launch(kern, grid=1, block_threads=64, args=(lock,),
                      tracer=tracer)
        locks = [e for e in tracer.events
                 if e.kind == "stall" and e.detail == "lock"]
        assert locks, "the losing warp must log its lock wait"


class TestApointerTranslationEvents:
    def test_explicit_tracer_sees_translation_events(self):
        device = Device(memory_bytes=8 * 1024 * 1024)
        src = device.alloc(64 * 1024)
        avm = AVM(APConfig())

        def kern(ctx):
            ap = avm.gvmmap_device(ctx, src, 64 * 1024)
            yield from ap.seek(ctx, ctx.lane * 4)
            _ = yield from ap.read(ctx, "f4")
            yield from ap.destroy(ctx)

        tracer = Tracer()
        device.launch(kern, grid=1, block_threads=32, tracer=tracer)
        trans = [e for e in tracer.events if e.kind == "translation"]
        assert trans, "apointer reads must emit translation events"
        # Every decomposition stays consistent: hid + exposed parts
        # can never exceed what the request charged.
        for e in trans:
            iss, lat, hid = _parse_translation_detail(e.detail)
            assert lat >= 0 and hid >= 0 and iss >= 0
