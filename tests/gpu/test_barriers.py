"""Barrier semantics under tricky schedules."""

import pytest

from repro.gpu import Device


@pytest.fixture
def dev():
    return Device(memory_bytes=8 * 1024 * 1024)


class TestBarriers:
    def test_barrier_waits_for_slowest_warp(self, dev):
        after = []

        def kern(ctx):
            if ctx.warp_in_block == 0:
                yield from ctx.sleep(5000)
            yield from ctx.syncthreads()
            t = yield from ctx.clock()
            after.append(t)

        dev.launch(kern, grid=1, block_threads=4 * 32)
        assert min(after) >= 5000

    def test_multiple_barriers_in_sequence(self, dev):
        order = []

        def kern(ctx):
            for phase in range(3):
                order.append((phase, ctx.warp_in_block))
                yield from ctx.syncthreads()

        dev.launch(kern, grid=1, block_threads=2 * 32)
        # All warps complete phase p before any enters phase p+1... the
        # *record* order interleaves, but each phase has both warps.
        for phase in range(3):
            warps = [w for p, w in order if p == phase]
            assert sorted(warps) == [0, 1]

    def test_warp_exiting_before_barrier_releases_others(self, dev):
        """A warp that returns early must not deadlock the barrier
        (live-warp accounting)."""
        reached = []

        def kern(ctx):
            if ctx.warp_in_block == 0:
                return
                yield  # pragma: no cover
            yield from ctx.compute(10)
            yield from ctx.syncthreads()
            reached.append(ctx.warp_in_block)

        dev.launch(kern, grid=1, block_threads=3 * 32)
        assert sorted(reached) == [1, 2]

    def test_barriers_are_per_block(self, dev):
        """Blocks synchronise independently: a slow warp in block 0 does
        not hold up block 1's barrier."""
        times = {}

        def kern(ctx):
            if ctx.block_id == 0 and ctx.warp_in_block == 0:
                yield from ctx.sleep(20000)
            yield from ctx.syncthreads()
            t = yield from ctx.clock()
            times.setdefault(ctx.block_id, []).append(t)

        dev.launch(kern, grid=2, block_threads=2 * 32)
        assert max(times[1]) < 20000 <= max(times[0])
