"""Integration tests for the event-driven engine and Device launch API.

These validate both the *functional* behaviour (data really moves) and the
*timing* behaviour (latency hiding, bandwidth saturation, barriers, locks)
that the paper's evaluation depends on.
"""

import numpy as np
import pytest

from repro.gpu import Device, K80_SPEC
from repro.gpu.instructions import TimedLock


@pytest.fixture
def dev():
    return Device(memory_bytes=8 * 1024 * 1024)


def _copy_kernel(ctx, src, dst):
    idx = ctx.global_tid
    ctx.charge(2)
    vals = yield from ctx.load(src + idx * 4, "f4")
    yield from ctx.store(dst + idx * 4, vals, "f4")


class TestFunctional:
    def test_copy_kernel_moves_data(self, dev):
        n = 8 * 256
        src, dst = dev.alloc(n * 4), dev.alloc(n * 4)
        dev.memory.write(src, np.arange(n, dtype=np.float32))
        dev.launch(_copy_kernel, grid=8, block_threads=256, args=(src, dst))
        out = dev.memory.read(dst, n * 4).view(np.float32)
        assert np.array_equal(out, np.arange(n, dtype=np.float32))

    def test_atomic_add_is_exact_across_warps(self, dev):
        counter = dev.alloc(8)

        def kern(ctx, counter):
            yield from ctx.atomic_add(counter, 1)

        dev.launch(kern, grid=4, block_threads=128, args=(counter,))
        val = int(dev.memory.read(counter, 8).view(np.int64)[0])
        assert val == 4 * 128 // 32  # one atomic per warp

    def test_barrier_orders_scratchpad_writes(self, dev):
        out_addr = dev.alloc(4 * 1024)

        def kern(ctx, out_addr):
            shared = ctx.block.shared.setdefault(
                "vals", np.zeros(ctx.block.threads, dtype=np.float32))
            shared[ctx.block_tid] = ctx.global_tid
            yield from ctx.scratch(1)
            yield from ctx.syncthreads()
            # read a value written by a *different* warp
            peer = (ctx.block_tid + 32) % ctx.block.threads
            yield from ctx.scratch(1)
            yield from ctx.store(out_addr + ctx.global_tid * 4,
                                 shared[peer], "f4")

        dev.launch(kern, grid=2, block_threads=128, args=(out_addr,))
        out = dev.memory.read(out_addr, 4 * 256).view(np.float32)
        expected = np.concatenate([
            (np.arange(128) + 32) % 128,
            ((np.arange(128) + 32) % 128) + 128,
        ]).astype(np.float32)
        assert np.array_equal(out, expected)

    def test_clock_is_monotonic(self, dev):
        times = []

        def kern(ctx, src):
            t0 = yield from ctx.clock()
            _ = yield from ctx.load(src + ctx.global_tid * 4, "f4")
            t1 = yield from ctx.clock()
            times.append((t0, t1))

        src = dev.alloc(4096)
        dev.launch(kern, grid=1, block_threads=64, args=(src,))
        assert all(t1 > t0 for t0, t1 in times)


class TestTiming:
    def test_single_warp_read_latency_matches_table1_raw(self, dev):
        """Raw pointer read: paper Table I row 1 reports 225 cycles."""
        times = []

        def kern(ctx, src):
            t0 = yield from ctx.clock()
            ctx.charge(2, chain=2)
            _ = yield from ctx.load(src + ctx.global_tid * 4, "f4")
            t1 = yield from ctx.clock()
            times.append(t1 - t0)

        src = dev.alloc(4096)
        dev.launch(kern, grid=1, block_threads=32, args=(src,))
        assert times[0] == pytest.approx(225, rel=0.05)

    def test_streaming_copy_saturates_bandwidth(self):
        """A raw tiled copy should reach ~100% of achievable bandwidth."""
        dev = Device(memory_bytes=128 * 1024 * 1024)
        per_thread, grid, bt = 32, 52, 1024
        n = grid * bt * per_thread
        src, dst = dev.alloc(n * 4), dev.alloc(n * 4)

        def kern(ctx, src, dst):
            total = grid * bt
            for i in range(per_thread):
                idx = ctx.global_tid + i * total
                ctx.charge(3)
                v = yield from ctx.load(src + idx * 4, "f4")
                ctx.charge(2)
                yield from ctx.store(dst + idx * 4, v, "f4")

        res = dev.launch(kern, grid=grid, block_threads=bt, args=(src, dst))
        bw = res.stats.dram_bandwidth(dev.spec)
        assert bw == pytest.approx(dev.spec.dram_bandwidth_achievable,
                                   rel=0.05)

    def test_more_warps_hide_latency(self, dev):
        """Per-access cost drops as occupancy grows (Figure 6 mechanism)."""
        def kern(ctx, src, iters):
            for i in range(iters):
                ctx.charge(10, chain=10)
                _ = yield from ctx.load(
                    src + (ctx.global_tid * 4 + i * 128) % 4096, "f4")

        src = dev.alloc(8192)
        lone = dev.launch(kern, grid=1, block_threads=32, args=(src, 8))
        packed = dev.launch(kern, grid=13, block_threads=1024, args=(src, 8))
        per_access_lone = lone.cycles / 8
        # packed: 13 blocks * 32 warps run concurrently on 13 SMs
        per_access_packed = packed.cycles / 8 / 32
        assert per_access_packed < per_access_lone / 3

    def test_extra_instructions_hidden_when_memory_bound(self, dev):
        """The free-computation bubble: small instruction overheads cost
        nothing when the kernel is bandwidth-bound at full occupancy."""
        def kern_cheap(ctx, src, iters):
            total = 13 * 1024
            for i in range(iters):
                idx = ctx.global_tid + i * total
                ctx.charge(2)
                _ = yield from ctx.load(src + idx * 16, "f8")

        def kern_costly(ctx, src, iters):
            total = 13 * 1024
            for i in range(iters):
                idx = ctx.global_tid + i * total
                ctx.charge(20)  # extra instructions, issue-only
                _ = yield from ctx.load(src + idx * 16, "f8")

        dev2 = Device(memory_bytes=64 * 1024 * 1024)
        src = dev2.alloc(13 * 1024 * 16 * 16)
        cheap = dev2.launch(kern_cheap, grid=13, block_threads=1024,
                            args=(src, 16))
        costly = dev2.launch(kern_costly, grid=13, block_threads=1024,
                             args=(src, 16))
        overhead = costly.cycles / cheap.cycles - 1
        assert overhead < 0.10

    def test_extra_instructions_visible_single_warp(self, dev):
        """The same overhead is fully exposed with one resident warp."""
        def kern(ctx, src, extra):
            for i in range(8):
                ctx.charge(2 + extra, chain=2 + extra)
                _ = yield from ctx.load(src + ctx.global_tid * 4, "f4")

        src = dev.alloc(4096)
        cheap = dev.launch(kern, grid=1, block_threads=32, args=(src, 0))
        costly = dev.launch(kern, grid=1, block_threads=32, args=(src, 20))
        assert costly.cycles > cheap.cycles * 1.5

    def test_block_waves_serialize(self, dev):
        """With 4x more blocks than can be resident, runtime ~4x."""
        def kern(ctx, src):
            for i in range(4):
                ctx.charge(50, chain=50)
                _ = yield from ctx.load(src + ctx.global_tid * 4, "f4")

        src = dev.alloc(4096)
        one_wave = dev.launch(kern, grid=26, block_threads=1024, args=(src,))
        four_waves = dev.launch(kern, grid=104, block_threads=1024,
                                args=(src,))
        ratio = four_waves.cycles / one_wave.cycles
        assert 3.0 < ratio < 5.0


class TestLocks:
    def test_lock_serializes_critical_section(self, dev):
        lock = TimedLock("t")
        order = []

        def kern(ctx, lock):
            yield from ctx.lock(lock)
            order.append(("enter", ctx.warp_id))
            yield from ctx.sleep(100)
            order.append(("exit", ctx.warp_id))
            yield from ctx.unlock(lock)

        dev.launch(kern, grid=1, block_threads=128, args=(lock,))
        # Critical sections must be properly nested: enter/exit alternate.
        kinds = [k for k, _ in order]
        assert kinds == ["enter", "exit"] * 4
        assert lock.holder is None

    def test_contention_is_counted(self, dev):
        lock = TimedLock("t")

        def kern(ctx, lock):
            yield from ctx.lock(lock)
            yield from ctx.sleep(10)
            yield from ctx.unlock(lock)

        res = dev.launch(kern, grid=1, block_threads=256, args=(lock,))
        assert res.stats.lock_acquisitions == 8
        assert res.stats.lock_contentions > 0


class TestLaunchValidation:
    def test_zero_grid_rejected(self, dev):
        with pytest.raises(ValueError):
            dev.launch(_copy_kernel, grid=0, block_threads=32, args=(0, 0))

    def test_unschedulable_kernel_rejected(self, dev):
        with pytest.raises(ValueError):
            dev.launch(_copy_kernel, grid=1,
                       block_threads=K80_SPEC.max_threads_per_sm * 2,
                       args=(0, 0))

    def test_stats_accumulate_per_launch(self, dev):
        src, dst = dev.alloc(1024), dev.alloc(1024)
        r1 = dev.launch(_copy_kernel, grid=1, block_threads=32,
                        args=(src, dst))
        assert r1.stats.loads == 1
        assert r1.stats.stores == 1
        assert dev.launches == 1
