"""Tests for the engine's advanced scheduling features: issue slicing,
memory-level parallelism, I/O preemption, and host serialisation."""

import numpy as np
import pytest

from repro.gpu import Device
from repro.gpu.specs import K80_SPEC


@pytest.fixture
def dev():
    return Device(memory_bytes=16 * 1024 * 1024)


class TestIssueSlicing:
    def test_large_compute_does_not_starve_small_ops(self, dev):
        """A warp issuing tiny ops alongside warps with huge compute
        blocks must make progress at a fair rate."""
        done_times = []

        def kern(ctx):
            if ctx.warp_in_block == 0:
                for _ in range(20):
                    yield from ctx.compute(4, chain=4)
                t = yield from ctx.clock()
                done_times.append(("small", t))
            else:
                yield from ctx.compute(8000, chain=100)
                t = yield from ctx.clock()
                done_times.append(("big", t))

        dev.launch(kern, grid=1, block_threads=4 * 32)
        small = next(t for k, t in done_times if k == "small")
        bigs = [t for k, t in done_times if k == "big"]
        # The small warp must not be serialised behind all big blocks.
        assert small < max(bigs)

    def test_sliced_total_issue_preserved(self, dev):
        """Slicing changes interleaving, not total instruction count."""
        def kern(ctx):
            yield from ctx.compute(1000, chain=10)

        res = dev.launch(kern, grid=1, block_threads=32)
        assert res.stats.instructions == pytest.approx(1000)

    def test_single_warp_chain_latency_unchanged(self, dev):
        """Slicing must not change single-warp dependent-chain timing
        (Table I calibration depends on it)."""
        def kern(ctx, out):
            t0 = yield from ctx.clock()
            yield from ctx.compute(200, chain=200)
            t1 = yield from ctx.clock()
            out.append(t1 - t0)

        out = []
        dev.launch(kern, grid=1, block_threads=32, args=(out,))
        spec = dev.spec
        expected = 200 * spec.dependent_issue_cycles
        assert out[0] == pytest.approx(expected, rel=0.15)


class TestMLP:
    def test_async_loads_overlap(self, dev):
        """N independent loads behind a fence cost ~one latency, not N."""
        src = dev.alloc(64 * 1024)

        def kern(ctx, n, out):
            t0 = yield from ctx.clock()
            for i in range(n):
                _ = yield from ctx.load_wide(
                    src + ctx.lane * 16 + i * 2048, "f4", 4,
                    nonblocking=True)
            yield from ctx.fence()
            t1 = yield from ctx.clock()
            out.append(t1 - t0)

        serial, overlapped = [], []

        def serial_kern(ctx, n, out):
            t0 = yield from ctx.clock()
            for i in range(n):
                _ = yield from ctx.load_wide(
                    src + ctx.lane * 16 + i * 2048, "f4", 4)
            t1 = yield from ctx.clock()
            out.append(t1 - t0)

        dev.launch(serial_kern, grid=1, block_threads=32,
                   args=(6, serial))
        dev.launch(kern, grid=1, block_threads=32, args=(6, overlapped))
        assert overlapped[0] < serial[0] / 2

    def test_fence_without_loads_is_cheap(self, dev):
        def kern(ctx, out):
            t0 = yield from ctx.clock()
            yield from ctx.fence()
            t1 = yield from ctx.clock()
            out.append(t1 - t0)

        out = []
        dev.launch(kern, grid=1, block_threads=32, args=(out,))
        assert out[0] < 50

    def test_async_load_returns_correct_data(self, dev):
        src = dev.alloc(4096)
        dev.memory.write(src, np.arange(1024, dtype=np.float32))
        seen = []

        def kern(ctx):
            vals = yield from ctx.load_wide(src + ctx.lane * 16, "f4", 4,
                                            nonblocking=True)
            yield from ctx.fence()
            seen.append(vals.copy())

        dev.launch(kern, grid=1, block_threads=32)
        assert np.array_equal(seen[0].reshape(-1),
                              np.arange(128, dtype=np.float32))


class TestIOPreemption:
    def _mixed(self, preempt):
        dev = Device(memory_bytes=16 * 1024 * 1024)
        dev.spec = K80_SPEC.with_overrides(io_preemption=preempt)

        def kern(ctx):
            if ctx.block_id < 26:
                for _ in range(4):
                    yield from ctx.sleep(20000, io_wait=True)
            else:
                yield from ctx.compute(2000, chain=50)

        return dev.launch(kern, grid=52, block_threads=1024)

    def test_preemption_overlaps_compute_with_io(self):
        off = self._mixed(False)
        on = self._mixed(True)
        assert on.stats.preemptions > 0
        assert on.cycles < off.cycles

    def test_preemption_off_by_default(self):
        res = self._mixed(False)
        assert res.stats.preemptions == 0

    def test_plain_sleep_does_not_preempt(self):
        dev = Device(memory_bytes=16 * 1024 * 1024)
        dev.spec = K80_SPEC.with_overrides(io_preemption=True)

        def kern(ctx):
            if ctx.block_id < 26:
                yield from ctx.sleep(20000)       # not an I/O wait
            else:
                yield from ctx.compute(100)

        res = dev.launch(kern, grid=52, block_threads=1024)
        assert res.stats.preemptions == 0


class TestHostSerialisation:
    def test_host_rpcs_serialise(self, dev):
        """The host service is one server — the Figure 1 bottleneck."""
        def kern(ctx):
            yield from ctx.host_compute(1e-6)

        res = dev.launch(kern, grid=2, block_threads=1024)
        nwarps = 2 * 32
        expected = nwarps * 1e-6 * dev.spec.clock_hz
        assert res.cycles >= expected * 0.95
