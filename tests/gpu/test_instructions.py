"""Unit tests for request dataclasses and TimedLock semantics."""


from repro.gpu.instructions import (
    Compute,
    MemAccess,
    PcieTransfer,
    Sleep,
    TimedLock,
)


class TestCompute:
    def test_chain_defaults_to_count(self):
        assert Compute(count=10).chain_length() == 10

    def test_explicit_chain(self):
        assert Compute(count=10, chain=3).chain_length() == 3

    def test_zero_chain_allowed(self):
        assert Compute(count=10, chain=0).chain_length() == 0


class TestMemAccess:
    def test_defaults(self):
        m = MemAccess(transactions=1)
        assert not m.is_store
        assert not m.nonblocking
        assert m.post_chain == 0.0


class TestPcieTransfer:
    def test_latency_free_default_off(self):
        assert not PcieTransfer(nbytes=4096).latency_free


class TestSleep:
    def test_io_wait_default_off(self):
        assert not Sleep(cycles=10).io_wait


class TestTimedLock:
    def test_initial_state(self):
        lock = TimedLock("x")
        assert lock.holder is None
        assert lock.waiters == []
        assert lock.acquisitions == 0

    def test_custom_latency(self):
        assert TimedLock("x", latency=12.5).latency == 12.5
        assert TimedLock("x").latency is None

    def test_repr_shows_state(self):
        lock = TimedLock("mylock")
        assert "mylock" in repr(lock)
        assert "free" in repr(lock)
        lock.holder = object()
        assert "held" in repr(lock)
