"""Unit tests for WarpContext: identity, charging, scalar helpers."""

import numpy as np
import pytest

from repro.gpu import Device


@pytest.fixture
def dev():
    return Device(memory_bytes=8 * 1024 * 1024)


class TestIdentity:
    def test_global_tid_layout(self, dev):
        tids = []

        def kern(ctx):
            tids.append((ctx.block_id, ctx.warp_in_block,
                         ctx.global_tid.copy()))
            yield from ctx.flush()

        dev.launch(kern, grid=2, block_threads=64)
        by_key = {(b, w): t for b, w, t in tids}
        assert by_key[(0, 0)][0] == 0
        assert by_key[(0, 1)][0] == 32
        assert by_key[(1, 0)][0] == 64
        assert by_key[(1, 1)][31] == 127

    def test_warp_id_unique(self, dev):
        ids = []

        def kern(ctx):
            ids.append(ctx.warp_id)
            yield from ctx.flush()

        dev.launch(kern, grid=3, block_threads=96)
        assert sorted(ids) == list(range(9))

    def test_lane_vector(self, dev):
        def kern(ctx):
            assert np.array_equal(ctx.lane, np.arange(32))
            yield from ctx.flush()

        dev.launch(kern, grid=1, block_threads=32)


class TestCharging:
    def test_charges_fold_into_next_op(self, dev):
        """Charged instructions appear in the launch's totals."""
        def kern(ctx):
            ctx.charge(17)
            yield from ctx.compute(3)

        res = dev.launch(kern, grid=1, block_threads=32)
        assert res.stats.instructions == pytest.approx(20)

    def test_flush_emits_pending(self, dev):
        def kern(ctx):
            ctx.charge(9)
            yield from ctx.flush()

        res = dev.launch(kern, grid=1, block_threads=32)
        assert res.stats.instructions == pytest.approx(9)

    def test_flush_without_pending_is_free(self, dev):
        def kern(ctx):
            yield from ctx.flush()

        res = dev.launch(kern, grid=1, block_threads=32)
        assert res.stats.instructions == 0
        assert res.cycles == 0

    def test_intrinsics_charge_one_instruction(self, dev):
        def kern(ctx):
            ctx.ballot(ctx.lane < 16)
            ctx.all(ctx.lane >= 0)
            ctx.any(ctx.lane == 0)
            ctx.shfl(ctx.lane, 0)
            yield from ctx.flush()

        res = dev.launch(kern, grid=1, block_threads=32)
        assert res.stats.instructions == pytest.approx(4)


class TestScalarAccess:
    def test_scalar_roundtrip(self, dev):
        addr = dev.alloc(64)
        got = []

        def kern(ctx):
            yield from ctx.store_scalar(addr, 0xDEADBEEF, "u8")
            got.append((yield from ctx.load_scalar(addr, "u8")))

        dev.launch(kern, grid=1, block_threads=32)
        assert got[0] == 0xDEADBEEF

    def test_clock_monotonic_and_flushes(self, dev):
        times = []

        def kern(ctx):
            t0 = yield from ctx.clock()
            ctx.charge(100, chain=100)
            t1 = yield from ctx.clock()   # flushes the charge
            times.append((t0, t1))

        dev.launch(kern, grid=1, block_threads=32)
        t0, t1 = times[0]
        assert t1 - t0 >= 100 * dev.spec.dependent_issue_cycles * 0.9


class TestMaskedAccess:
    def test_partial_mask_load_store(self, dev):
        base = dev.alloc(256)
        dev.memory.write(base, np.arange(64, dtype=np.uint32))

        def kern(ctx):
            mask = ctx.lane < 8
            vals = yield from ctx.load(base + ctx.lane * 4, "u4",
                                       mask=mask)
            yield from ctx.store(base + (ctx.lane + 32) * 4, vals + 1,
                                 "u4", mask=mask)

        dev.launch(kern, grid=1, block_threads=32)
        out = dev.memory.read(base + 128, 32).view(np.uint32)
        assert np.array_equal(out, np.arange(8, dtype=np.uint32) + 1)
