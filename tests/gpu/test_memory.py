"""Unit tests for simulated global memory and scratchpad."""

import numpy as np
import pytest

from repro.gpu.memory import DTYPE_WIDTHS, GlobalMemory, MemoryError_, Scratchpad


@pytest.fixture
def mem():
    return GlobalMemory(64 * 1024)


class TestAllocator:
    def test_alloc_returns_aligned_bases(self, mem):
        a = mem.alloc(100)
        b = mem.alloc(100)
        assert a % 256 == 0
        assert b % 256 == 0
        assert b >= a + 100

    def test_alloc_out_of_memory_raises(self, mem):
        with pytest.raises(MemoryError_):
            mem.alloc(mem.size + 1)

    def test_alloc_exactly_fills(self):
        m = GlobalMemory(1024)
        base = m.alloc(1024)
        assert base == 0
        with pytest.raises(MemoryError_):
            m.alloc(1)

    def test_reset_allocator(self, mem):
        mem.alloc(1000)
        mem.reset_allocator()
        assert mem.alloc(16) == 0

    def test_bytes_allocated_tracks(self, mem):
        mem.alloc(512)
        assert mem.bytes_allocated == 512


class TestBulkAccess:
    def test_write_then_read_roundtrip(self, mem):
        data = np.arange(100, dtype=np.float32)
        mem.write(0, data)
        back = mem.read(0, 400).view(np.float32)
        assert np.array_equal(back, data)

    def test_read_out_of_bounds_raises(self, mem):
        with pytest.raises(MemoryError_):
            mem.read(mem.size - 2, 4)

    def test_write_negative_addr_raises(self, mem):
        with pytest.raises(MemoryError_):
            mem.write(-4, np.zeros(4, dtype=np.uint8))


class TestVectorAccess:
    @pytest.mark.parametrize("dtype", ["u1", "u2", "u4", "i4", "f4", "u8", "f8"])
    def test_roundtrip_all_dtypes(self, mem, dtype):
        width = DTYPE_WIDTHS[dtype]
        addrs = np.arange(32) * width
        vals = np.arange(32).astype(np.dtype(dtype))
        mem.store_vector(addrs, vals, dtype)
        back = mem.load_vector(addrs, dtype)
        assert np.array_equal(back, vals)

    def test_masked_load_returns_zero_for_inactive(self, mem):
        mem.write(0, np.arange(32, dtype=np.float32))
        addrs = np.arange(32) * 4
        mask = np.zeros(32, dtype=bool)
        mask[:4] = True
        out = mem.load_vector(addrs, "f4", mask=mask)
        assert np.array_equal(out[:4], np.arange(4, dtype=np.float32))
        assert np.all(out[4:] == 0)

    def test_masked_store_only_writes_active(self, mem):
        addrs = np.arange(32) * 4
        mask = np.zeros(32, dtype=bool)
        mask[5] = True
        mem.store_vector(addrs, np.full(32, 7.0, np.float32), "f4", mask=mask)
        back = mem.read(0, 128).view(np.float32)
        assert back[5] == 7.0
        assert back[0] == 0.0

    def test_scattered_load(self, mem):
        mem.write(0, np.arange(1000, dtype=np.float32))
        idx = np.array([3, 999, 500, 1] + [0] * 28)
        out = mem.load_vector(idx * 4, "f4")
        assert out[0] == 3.0 and out[1] == 999.0 and out[2] == 500.0

    def test_vector_out_of_bounds_raises(self, mem):
        with pytest.raises(MemoryError_):
            mem.load_vector(np.array([mem.size]), "f4")

    def test_all_inactive_mask_is_noop(self, mem):
        out = mem.load_vector(np.arange(32) * 4, "f4",
                              mask=np.zeros(32, dtype=bool))
        assert np.all(out == 0)


class TestCoalescing:
    def test_fully_coalesced_4byte_is_one_transaction(self, mem):
        addrs = np.arange(32) * 4
        assert mem.transactions_for(addrs, 4) == 1

    def test_coalesced_8byte_is_two_transactions(self, mem):
        addrs = np.arange(32) * 8
        assert mem.transactions_for(addrs, 8) == 2

    def test_fully_scattered_is_32_transactions(self, mem):
        addrs = np.arange(32) * 4096
        assert mem.transactions_for(addrs, 4) == 32

    def test_same_address_all_lanes_is_one_transaction(self, mem):
        addrs = np.full(32, 1024)
        assert mem.transactions_for(addrs, 4) == 1

    def test_straddling_access_counts_both_segments(self, mem):
        addrs = np.array([126])
        assert mem.transactions_for(addrs, 4) == 2

    def test_mask_excludes_lanes(self, mem):
        addrs = np.arange(32) * 4096
        mask = np.zeros(32, dtype=bool)
        mask[:2] = True
        assert mem.transactions_for(addrs, 4, mask=mask) == 2

    def test_empty_mask_is_zero_transactions(self, mem):
        assert mem.transactions_for(np.arange(32), 4,
                                    mask=np.zeros(32, dtype=bool)) == 0


class TestScratchpad:
    def test_alloc_array(self):
        sp = Scratchpad(1024)
        arr = sp.alloc_array("tlb", 32, "u8")
        assert arr.size == 32
        assert sp.bytes_used == 256

    def test_overflow_raises(self):
        sp = Scratchpad(64)
        with pytest.raises(MemoryError_):
            sp.alloc_array("big", 100, "u8")

    def test_multiple_allocations_accumulate(self):
        sp = Scratchpad(1024)
        sp.alloc_array("a", 16, "u4")
        sp.alloc_array("b", 16, "u4")
        assert sp.bytes_used == 128
