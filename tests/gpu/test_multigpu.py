"""Tests for concurrent multi-GPU launches."""

import numpy as np
import pytest

from repro.gpu import Device, K80_SPEC
from repro.gpu.multigpu import ClusterLaunch, launch_cluster


def make_devices(n=2):
    return [Device(spec=K80_SPEC, memory_bytes=16 * 1024 * 1024)
            for _ in range(n)]


def compute_kernel(ctx, out):
    yield from ctx.compute(2000, chain=60)
    out.append(ctx.warp_id)


class TestClusterLaunch:
    def test_devices_run_concurrently(self):
        """Two equal kernels take ~one kernel's time, not two."""
        d0, d1 = make_devices()
        solo = d0.launch(compute_kernel, grid=26, block_threads=1024,
                         args=([],))
        both = launch_cluster([
            ClusterLaunch(d0, compute_kernel, 26, 1024, args=([],)),
            ClusterLaunch(d1, compute_kernel, 26, 1024, args=([],)),
        ])
        assert both.cycles == pytest.approx(solo.cycles, rel=0.05)

    def test_memories_are_isolated(self):
        d0, d1 = make_devices()
        a0, a1 = d0.alloc(4096), d1.alloc(4096)

        def writer(ctx, base, value):
            yield from ctx.store(base + ctx.lane * 4,
                                 np.full(32, value, np.uint32), "u4")

        launch_cluster([
            ClusterLaunch(d0, writer, 1, 32, args=(a0, 1)),
            ClusterLaunch(d1, writer, 1, 32, args=(a1, 2)),
        ])
        assert np.all(d0.memory.read(a0, 128).view(np.uint32) == 1)
        assert np.all(d1.memory.read(a1, 128).view(np.uint32) == 2)

    def test_dram_bandwidth_not_shared(self):
        """Each device has its own DRAM: two streaming kernels keep
        their throughput."""
        def stream(ctx, base):
            for i in range(16):
                _ = yield from ctx.load_wide(
                    base + ctx.global_tid * 16, "f4", 4)

        d0, _ = make_devices(1)[0], None
        d0b = Device(spec=K80_SPEC, memory_bytes=64 * 1024 * 1024)
        base0 = d0b.alloc(16 * 1024 * 1024)
        solo = d0b.launch(stream, grid=26, block_threads=1024,
                          args=(base0,))

        da = Device(spec=K80_SPEC, memory_bytes=64 * 1024 * 1024)
        db = Device(spec=K80_SPEC, memory_bytes=64 * 1024 * 1024)
        ba, bb = da.alloc(16 * 1024 * 1024), db.alloc(16 * 1024 * 1024)
        both = launch_cluster([
            ClusterLaunch(da, stream, 26, 1024, args=(ba,)),
            ClusterLaunch(db, stream, 26, 1024, args=(bb,)),
        ])
        assert both.cycles == pytest.approx(solo.cycles, rel=0.10)

    def test_host_is_shared(self):
        """Host RPCs from both devices serialise on the one host CPU."""
        def rpc_kernel(ctx):
            yield from ctx.host_compute(2e-6)

        d0, d1 = make_devices()
        solo = d0.launch(rpc_kernel, grid=1, block_threads=1024)
        d2, d3 = make_devices()
        both = launch_cluster([
            ClusterLaunch(d2, rpc_kernel, 1, 1024),
            ClusterLaunch(d3, rpc_kernel, 1, 1024),
        ])
        assert both.cycles > solo.cycles * 1.8

    def test_validation(self):
        d0, d1 = make_devices()
        with pytest.raises(ValueError, match="no launches"):
            launch_cluster([])
        with pytest.raises(ValueError, match="one launch per device"):
            launch_cluster([
                ClusterLaunch(d0, compute_kernel, 1, 32, args=([],)),
                ClusterLaunch(d0, compute_kernel, 1, 32, args=([],)),
            ])
        with pytest.raises(ValueError):
            ClusterLaunch(d0, compute_kernel, 0, 32)

    def test_uneven_workloads_makespan(self):
        d0, d1 = make_devices()

        def short(ctx):
            yield from ctx.compute(100)

        long_solo = d1.launch(compute_kernel, grid=26, block_threads=1024,
                              args=([],))
        d2, d3 = make_devices()
        both = launch_cluster([
            ClusterLaunch(d2, short, 1, 32),
            ClusterLaunch(d3, compute_kernel, 26, 1024, args=([],)),
        ])
        assert both.cycles == pytest.approx(long_solo.cycles, rel=0.05)
