"""Tests for the occupancy calculator."""

import pytest

from repro.gpu.occupancy import occupancy_limits
from repro.gpu.specs import K80_SPEC


class TestOccupancy:
    def test_paper_configuration_full_occupancy(self):
        """The paper uses 1024 threads/block at 64 regs/thread: 2 blocks/SM."""
        occ = occupancy_limits(K80_SPEC, 1024, regs_per_thread=64)
        assert occ.blocks_per_sm == 2

    def test_register_pressure_halves_occupancy(self):
        """At 128 regs/thread the GK210 register file limits residency."""
        occ = occupancy_limits(K80_SPEC, 1024, regs_per_thread=128)
        assert occ.blocks_per_sm == 1
        assert occ.limiting_factor == "registers"

    def test_small_blocks_limited_by_block_count(self):
        occ = occupancy_limits(K80_SPEC, 32, regs_per_thread=16)
        assert occ.blocks_per_sm == K80_SPEC.max_blocks_per_sm
        assert occ.limiting_factor == "max_blocks"

    def test_scratchpad_can_limit(self):
        occ = occupancy_limits(
            K80_SPEC, 128, regs_per_thread=16,
            scratchpad_bytes=K80_SPEC.scratchpad_bytes_per_sm)
        assert occ.blocks_per_sm == 1
        assert occ.limiting_factor == "scratchpad"

    def test_block_too_large_is_unschedulable(self):
        occ = occupancy_limits(K80_SPEC, K80_SPEC.max_threads_per_sm + 1)
        assert not occ.is_schedulable

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            occupancy_limits(K80_SPEC, 0)

    def test_tlb_scratchpad_footprint_is_small(self):
        """§IV-D: a 32-entry TLB costs <5% of scratchpad and never limits."""
        occ = occupancy_limits(K80_SPEC, 1024, regs_per_thread=64,
                               scratchpad_bytes=768 + 128)
        assert occ.blocks_per_sm == 2
