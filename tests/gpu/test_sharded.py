"""Deterministic sharded epoch execution (repro.gpu.sharded).

The contract under test: ``jobs=1`` and ``jobs=N`` are bit-identical
(stats, profiles, memory); host-free clusters additionally match the
unsharded single-engine result cycle for cycle; clusters with host
work keep cycles and integer counters identical to the unsharded path
(float-summed counters may differ in the last bits — accumulation
order — as documented in the module docstring).
"""

import json

import numpy as np
import pytest

from repro.gpu import Device, K80_SPEC, Tracer
from repro.gpu.multigpu import ClusterLaunch, launch_cluster
from repro.gpu.sharded import (
    WORKER_TIMEOUT,
    WORKER_TIMEOUT_ENV,
    _merge_spills,
    _series_spill_path,
    _ShardInstrument,
    _trace_spill_path,
    default_epoch_cycles,
    launch_cluster_sharded,
    worker_timeout,
)


def make_devices(n=2, mem=8 * 1024 * 1024):
    return [Device(spec=K80_SPEC, memory_bytes=mem) for _ in range(n)]


#: Synthetic instruction counts — arbitrary but named so the
#: calibration linter can audit that they are deliberate test loads,
#: not drifted hardware estimates.
COMPUTE_BLOCK = 500
COMPUTE_CHAIN = 20
WRITER_BLOCK = 100
WRITER_CHAIN = 10
RPC_PROLOGUE = 200
RPC_EPILOGUE = 50


def compute_kernel(ctx):
    yield from ctx.compute(COMPUTE_BLOCK, chain=COMPUTE_CHAIN)


def writer_kernel(ctx, base, value):
    yield from ctx.compute(WRITER_BLOCK, chain=WRITER_CHAIN)
    yield from ctx.store(base + ctx.lane * 4,
                         np.full(32, value, np.uint32), "u4")


def rpc_kernel(ctx, base):
    yield from ctx.compute(RPC_PROLOGUE, chain=WRITER_CHAIN)
    yield from ctx.host_compute(1e-6)
    yield from ctx.compute(RPC_EPILOGUE)
    yield from ctx.host_compute(2e-6)
    yield from ctx.store(base + ctx.lane * 4,
                         np.full(32, ctx.warp_id + 1, np.uint32), "u4")


def _cluster(devices, kernel, extra_args=lambda d, i: ()):
    return [ClusterLaunch(d, kernel, 2, 64, args=extra_args(d, i))
            for i, d in enumerate(devices)]


class TestEpochDefaults:
    def test_default_epoch_is_pcie_latency(self):
        assert default_epoch_cycles(K80_SPEC) \
            == max(1.0, K80_SPEC.pcie_latency_cycles())

    def test_nonpositive_epoch_rejected(self):
        devices = make_devices(2)
        with pytest.raises(ValueError, match="epoch_cycles"):
            launch_cluster_sharded(_cluster(devices, compute_kernel),
                                   epoch_cycles=0.0)

    def test_tracer_with_jobs_merges(self):
        # Tracing + jobs used to be rejected; per-shard spill files now
        # merge back into the caller's tracer with SM ids rebased to
        # each shard's global range.
        tracer = Tracer()
        devices = make_devices(2)
        result = launch_cluster(_cluster(devices, compute_kernel),
                                tracer=tracer, jobs=2)
        assert result.cycles > 0
        assert tracer.events
        sms = {e.sm for e in tracer.events if e.sm >= 0}
        assert max(sms) >= K80_SPEC.num_sms  # shard 1 rebased past 0's


class TestHostFreeEquivalence:
    def test_sharded_matches_unsharded_cycles(self):
        ref = launch_cluster(_cluster(make_devices(3), compute_kernel))
        shard = launch_cluster_sharded(
            _cluster(make_devices(3), compute_kernel))
        assert shard.cycles == ref.cycles
        assert shard.stats.instructions == ref.stats.instructions

    def test_memory_effects_match(self):
        ref_devices = make_devices(2)
        launch_cluster(_cluster(
            ref_devices, writer_kernel,
            lambda d, i: (d.alloc(4096), i + 1)))
        shard_devices = make_devices(2)
        launch_cluster_sharded(_cluster(
            shard_devices, writer_kernel,
            lambda d, i: (d.alloc(4096), i + 1)))
        for ref, shard in zip(ref_devices, shard_devices):
            assert bytes(ref.memory.data) == bytes(shard.memory.data)


class TestHostGatedEquivalence:
    """Clusters with host RPCs: the shared-host grant protocol must
    reproduce the unsharded cycle count and every integer counter."""

    def _run(self, launcher):
        devices = make_devices(3)
        bases = [d.alloc(4096) for d in devices]
        launches = [ClusterLaunch(d, rpc_kernel, 2, 64, args=(b,))
                    for d, b in zip(devices, bases)]
        result = launcher(launches)
        return result, [bytes(d.memory.data) for d in devices]

    def test_sharded_matches_unsharded(self):
        ref, ref_mem = self._run(launch_cluster)
        shard, shard_mem = self._run(launch_cluster_sharded)
        assert shard.cycles == ref.cycles
        assert shard.stats.instructions == ref.stats.instructions
        assert shard.stats.dram_bytes == ref.stats.dram_bytes
        assert shard.stats.stores == ref.stats.stores
        assert shard_mem == ref_mem
        # Float-summed counters agree to accumulation-order noise.
        assert shard.stats.host_seconds \
            == pytest.approx(ref.stats.host_seconds, rel=1e-12)

    def test_jobs_1_profile_merges(self):
        devices = make_devices(2)
        bases = [d.alloc(4096) for d in devices]
        launches = [ClusterLaunch(d, rpc_kernel, 2, 64, args=(b,))
                    for d, b in zip(devices, bases)]
        result = launch_cluster_sharded(launches, profile=True)
        assert result.profile is not None
        # One sm_busy slot per SM per shard, concatenated in shard order.
        assert len(result.profile.sm_busy) \
            == K80_SPEC.num_sms * len(launches)


class TestCrossProcessDeterminism:
    def test_jobs_1_and_jobs_n_bit_identical(self):
        def run(jobs):
            devices = make_devices(2)
            bases = [d.alloc(4096) for d in devices]
            launches = [ClusterLaunch(d, rpc_kernel, 2, 64, args=(b,))
                        for d, b in zip(devices, bases)]
            result = launch_cluster_sharded(launches, jobs=jobs,
                                            profile=True)
            return result, [bytes(d.memory.data) for d in devices]

        serial, serial_mem = run(jobs=1)
        parallel, parallel_mem = run(jobs=2)
        assert parallel.cycles == serial.cycles
        assert parallel.stats == serial.stats
        assert parallel.profile.sm_busy == serial.profile.sm_busy
        assert parallel.profile.stalls == serial.profile.stalls
        assert parallel_mem == serial_mem

    def test_multigpu_jobs_kwarg_routes_to_sharded(self):
        def build():
            devices = make_devices(2)
            bases = [d.alloc(4096) for d in devices]
            return [ClusterLaunch(d, rpc_kernel, 2, 64, args=(b,))
                    for d, b in zip(devices, bases)]

        ref = launch_cluster(build())
        result = launch_cluster(build(), jobs=1)
        assert result.cycles == ref.cycles


def _rpc_launches(devices):
    bases = [d.alloc(4096) for d in devices]
    return [ClusterLaunch(d, rpc_kernel, 2, 64, args=(b,))
            for d, b in zip(devices, bases)]


class TestShardedTracing:
    """Per-shard event shipping: traces and series spill per shard and
    merge deterministically, so jobs=1 == jobs=N bit for bit."""

    WINDOW = 500.0

    def _run(self, jobs):
        return launch_cluster_sharded(
            _rpc_launches(make_devices(2)), jobs=jobs, profile=True,
            trace=True, timeseries=True, window_cycles=self.WINDOW)

    @staticmethod
    def _tuples(tracer):
        return [(e.warp, e.block, e.kind, e.start, e.end, e.detail,
                 e.sm, e.req) for e in tracer.events]

    def test_traced_jobs_1_and_jobs_2_bit_identical(self):
        from repro.telemetry.attribution import attribute_tracer

        serial = self._run(jobs=1)
        parallel = self._run(jobs=2)
        assert serial.tracer is not None and serial.tracer.events
        assert self._tuples(parallel.tracer) \
            == self._tuples(serial.tracer)
        assert parallel.tracer.dropped == serial.tracer.dropped
        assert json.dumps(parallel.series, sort_keys=True) \
            == json.dumps(serial.series, sort_keys=True)
        # Attribution over the merged traces agrees too (acceptance:
        # identical reports, not merely identical event streams).
        assert attribute_tracer(parallel.tracer).to_dict() \
            == attribute_tracer(serial.tracer).to_dict()

    def test_series_merges_all_shards(self):
        result = self._run(jobs=1)
        series = result.series
        assert series["enabled"] == 1
        assert series["window_cycles"] == self.WINDOW
        assert series["dropped_windows"] == 0
        assert len(series["series"]) == series["windows"]
        assert {w["shard"] for w in series["series"]} == {0, 1}

    def test_spill_records_stamped(self, tmp_path):
        result = launch_cluster_sharded(
            _rpc_launches(make_devices(2)), trace=True,
            timeseries=True, window_cycles=self.WINDOW,
            spill_dir=str(tmp_path))
        assert result.tracer is not None
        for index in range(2):
            tlines = open(_trace_spill_path(str(tmp_path), index)) \
                .read().splitlines()
            meta = json.loads(tlines[0])
            assert meta["shard"] == meta["device"] == index
            epoch = meta["epoch_cycles"]
            assert meta["events"] == len(tlines) - 1
            for line in tlines[1:]:
                rec = json.loads(line)
                assert rec["shard"] == rec["device"] == index
                assert rec["epoch"] == int(rec["start"] // epoch)
            slines = open(_series_spill_path(str(tmp_path), index)) \
                .read().splitlines()
            smeta = json.loads(slines[0])
            assert smeta["shard"] == smeta["device"] == index
            assert smeta["windows"] == len(slines) - 1
            for line in slines[1:]:
                rec = json.loads(line)
                assert rec["shard"] == rec["device"] == index
                assert rec["epoch"] == int(rec["t0"] // epoch)


class TestSeriesMergeEdgeCases:
    """The merge must hold up when shards spill little or nothing."""

    def _inst(self, tmp_path):
        return _ShardInstrument(trace=True, timeseries=True,
                                window_cycles=100.0, epoch_cycles=50.0,
                                spill_dir=str(tmp_path))

    def test_no_spill_files_yields_empty_section(self, tmp_path):
        tracer = Tracer()
        merged = _merge_spills(self._inst(tmp_path), 2,
                               K80_SPEC.num_sms, tracer)
        assert merged == {"enabled": 0, "window_cycles": 0.0,
                          "windows": 0, "dropped_windows": 0,
                          "series": []}
        assert tracer.events == []

    def test_zero_window_shard_merges(self, tmp_path):
        inst = self._inst(tmp_path)
        # Shard 0 sampled nothing (meta line only); shard 1 one window.
        with open(_series_spill_path(inst.spill_dir, 0), "w") as f:
            f.write(json.dumps({"shard": 0, "device": 0,
                                "epoch_cycles": 50.0,
                                "window_cycles": 100.0,
                                "windows": 0,
                                "dropped_windows": 0}) + "\n")
        with open(_series_spill_path(inst.spill_dir, 1), "w") as f:
            f.write(json.dumps({"shard": 1, "device": 1,
                                "epoch_cycles": 50.0,
                                "window_cycles": 100.0,
                                "windows": 1,
                                "dropped_windows": 2}) + "\n")
            f.write(json.dumps({"window": 0, "t0": 0.0, "t1": 100.0,
                                "shard": 1, "device": 1,
                                "epoch": 0}) + "\n")
        merged = _merge_spills(inst, 2, K80_SPEC.num_sms, None)
        assert merged["enabled"] == 1
        assert merged["windows"] == 1
        assert merged["dropped_windows"] == 2
        assert len(merged["series"]) == 1
        assert merged["series"][0]["shard"] == 1

    def test_sm_and_req_rebase_skip_counters(self, tmp_path):
        inst = self._inst(tmp_path)
        with open(_trace_spill_path(inst.spill_dir, 0), "w") as f:
            # An empty shard that still dropped events must surface
            # the loss in the merged tracer.
            f.write(json.dumps({"shard": 0, "device": 0,
                                "epoch_cycles": 50.0, "events": 0,
                                "dropped": 2}) + "\n")
        with open(_trace_spill_path(inst.spill_dir, 1), "w") as f:
            f.write(json.dumps({"shard": 1, "device": 1,
                                "epoch_cycles": 50.0, "events": 2,
                                "dropped": 0}) + "\n")
            f.write(json.dumps({"warp": 3, "block": 0,
                                "kind": "page_in", "start": 10.0,
                                "end": 20.0, "detail": "", "sm": 0,
                                "req": "0:3:7", "shard": 1,
                                "device": 1, "epoch": 0}) + "\n")
            f.write(json.dumps({"warp": 0, "block": -1,
                                "kind": "counter", "start": 5.0,
                                "end": 5.0, "detail": "x=1",
                                "sm": -1, "req": "", "shard": 1,
                                "device": 1, "epoch": 0}) + "\n")
        tracer = Tracer()
        _merge_spills(inst, 2, K80_SPEC.num_sms, tracer)
        assert tracer.dropped == 2
        span, counter = tracer.events
        assert span.sm == K80_SPEC.num_sms     # rebased to shard 1
        assert span.req == "1:3:7"             # device prefix rebased
        assert counter.sm == -1                # counters stay global
        assert counter.req == ""

    def test_merge_series_stamps_launch_under_jobs_2(self):
        from repro.telemetry.timeseries import merge_series

        result = launch_cluster_sharded(
            _rpc_launches(make_devices(2)), jobs=2, timeseries=True,
            window_cycles=500.0)
        doc = {"components": {"timeseries": result.series}}
        merged = merge_series([doc, doc])
        assert merged["enabled"] == 2
        assert merged["windows"] == 2 * result.series["windows"]
        assert {w["launch"] for w in merged["series"]} == {0, 1}


class TestWorkerTimeoutEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(WORKER_TIMEOUT_ENV, raising=False)
        assert worker_timeout() == WORKER_TIMEOUT

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKER_TIMEOUT_ENV, "5.5")
        assert worker_timeout() == 5.5

    @pytest.mark.parametrize("raw", ["soon", ""])
    def test_non_numeric_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(WORKER_TIMEOUT_ENV, raw)
        with pytest.raises(ValueError, match="number of seconds"):
            worker_timeout()

    @pytest.mark.parametrize("raw", ["0", "-3", "nan"])
    def test_nonpositive_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(WORKER_TIMEOUT_ENV, raw)
        with pytest.raises(ValueError, match="positive"):
            worker_timeout()
