"""Deterministic sharded epoch execution (repro.gpu.sharded).

The contract under test: ``jobs=1`` and ``jobs=N`` are bit-identical
(stats, profiles, memory); host-free clusters additionally match the
unsharded single-engine result cycle for cycle; clusters with host
work keep cycles and integer counters identical to the unsharded path
(float-summed counters may differ in the last bits — accumulation
order — as documented in the module docstring).
"""

import numpy as np
import pytest

from repro.gpu import Device, K80_SPEC
from repro.gpu.multigpu import ClusterLaunch, launch_cluster
from repro.gpu.sharded import (
    default_epoch_cycles,
    launch_cluster_sharded,
)


def make_devices(n=2, mem=8 * 1024 * 1024):
    return [Device(spec=K80_SPEC, memory_bytes=mem) for _ in range(n)]


#: Synthetic instruction counts — arbitrary but named so the
#: calibration linter can audit that they are deliberate test loads,
#: not drifted hardware estimates.
COMPUTE_BLOCK = 500
COMPUTE_CHAIN = 20
WRITER_BLOCK = 100
WRITER_CHAIN = 10
RPC_PROLOGUE = 200
RPC_EPILOGUE = 50


def compute_kernel(ctx):
    yield from ctx.compute(COMPUTE_BLOCK, chain=COMPUTE_CHAIN)


def writer_kernel(ctx, base, value):
    yield from ctx.compute(WRITER_BLOCK, chain=WRITER_CHAIN)
    yield from ctx.store(base + ctx.lane * 4,
                         np.full(32, value, np.uint32), "u4")


def rpc_kernel(ctx, base):
    yield from ctx.compute(RPC_PROLOGUE, chain=WRITER_CHAIN)
    yield from ctx.host_compute(1e-6)
    yield from ctx.compute(RPC_EPILOGUE)
    yield from ctx.host_compute(2e-6)
    yield from ctx.store(base + ctx.lane * 4,
                         np.full(32, ctx.warp_id + 1, np.uint32), "u4")


def _cluster(devices, kernel, extra_args=lambda d, i: ()):
    return [ClusterLaunch(d, kernel, 2, 64, args=extra_args(d, i))
            for i, d in enumerate(devices)]


class TestEpochDefaults:
    def test_default_epoch_is_pcie_latency(self):
        assert default_epoch_cycles(K80_SPEC) \
            == max(1.0, K80_SPEC.pcie_latency_cycles())

    def test_nonpositive_epoch_rejected(self):
        devices = make_devices(2)
        with pytest.raises(ValueError, match="epoch_cycles"):
            launch_cluster_sharded(_cluster(devices, compute_kernel),
                                   epoch_cycles=0.0)

    def test_tracer_with_jobs_rejected(self):
        from repro.gpu import Tracer
        devices = make_devices(2)
        with pytest.raises(ValueError, match="tracer"):
            launch_cluster(_cluster(devices, compute_kernel),
                           tracer=Tracer(), jobs=2)


class TestHostFreeEquivalence:
    def test_sharded_matches_unsharded_cycles(self):
        ref = launch_cluster(_cluster(make_devices(3), compute_kernel))
        shard = launch_cluster_sharded(
            _cluster(make_devices(3), compute_kernel))
        assert shard.cycles == ref.cycles
        assert shard.stats.instructions == ref.stats.instructions

    def test_memory_effects_match(self):
        ref_devices = make_devices(2)
        launch_cluster(_cluster(
            ref_devices, writer_kernel,
            lambda d, i: (d.alloc(4096), i + 1)))
        shard_devices = make_devices(2)
        launch_cluster_sharded(_cluster(
            shard_devices, writer_kernel,
            lambda d, i: (d.alloc(4096), i + 1)))
        for ref, shard in zip(ref_devices, shard_devices):
            assert bytes(ref.memory.data) == bytes(shard.memory.data)


class TestHostGatedEquivalence:
    """Clusters with host RPCs: the shared-host grant protocol must
    reproduce the unsharded cycle count and every integer counter."""

    def _run(self, launcher):
        devices = make_devices(3)
        bases = [d.alloc(4096) for d in devices]
        launches = [ClusterLaunch(d, rpc_kernel, 2, 64, args=(b,))
                    for d, b in zip(devices, bases)]
        result = launcher(launches)
        return result, [bytes(d.memory.data) for d in devices]

    def test_sharded_matches_unsharded(self):
        ref, ref_mem = self._run(launch_cluster)
        shard, shard_mem = self._run(launch_cluster_sharded)
        assert shard.cycles == ref.cycles
        assert shard.stats.instructions == ref.stats.instructions
        assert shard.stats.dram_bytes == ref.stats.dram_bytes
        assert shard.stats.stores == ref.stats.stores
        assert shard_mem == ref_mem
        # Float-summed counters agree to accumulation-order noise.
        assert shard.stats.host_seconds \
            == pytest.approx(ref.stats.host_seconds, rel=1e-12)

    def test_jobs_1_profile_merges(self):
        devices = make_devices(2)
        bases = [d.alloc(4096) for d in devices]
        launches = [ClusterLaunch(d, rpc_kernel, 2, 64, args=(b,))
                    for d, b in zip(devices, bases)]
        result = launch_cluster_sharded(launches, profile=True)
        assert result.profile is not None
        # One sm_busy slot per SM per shard, concatenated in shard order.
        assert len(result.profile.sm_busy) \
            == K80_SPEC.num_sms * len(launches)


class TestCrossProcessDeterminism:
    def test_jobs_1_and_jobs_n_bit_identical(self):
        def run(jobs):
            devices = make_devices(2)
            bases = [d.alloc(4096) for d in devices]
            launches = [ClusterLaunch(d, rpc_kernel, 2, 64, args=(b,))
                        for d, b in zip(devices, bases)]
            result = launch_cluster_sharded(launches, jobs=jobs,
                                            profile=True)
            return result, [bytes(d.memory.data) for d in devices]

        serial, serial_mem = run(jobs=1)
        parallel, parallel_mem = run(jobs=2)
        assert parallel.cycles == serial.cycles
        assert parallel.stats == serial.stats
        assert parallel.profile.sm_busy == serial.profile.sm_busy
        assert parallel.profile.stalls == serial.profile.stalls
        assert parallel_mem == serial_mem

    def test_multigpu_jobs_kwarg_routes_to_sharded(self):
        def build():
            devices = make_devices(2)
            bases = [d.alloc(4096) for d in devices]
            return [ClusterLaunch(d, rpc_kernel, 2, 64, args=(b,))
                    for d, b in zip(devices, bases)]

        ref = launch_cluster(build())
        result = launch_cluster(build(), jobs=1)
        assert result.cycles == ref.cycles
