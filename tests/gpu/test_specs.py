"""Tests for the GPU spec arithmetic and timing derivations."""

import pytest

from repro.gpu.specs import K80_SPEC


class TestK80Spec:
    def test_paper_issue_rate(self):
        """§VI-A: 2056e9 instructions/s per GPU."""
        assert K80_SPEC.issued_instructions_per_s == 2056e9

    def test_warp_issue_rate_per_sm(self):
        # 2056e9 / 875e6 / 13 SMs / 32 lanes ≈ 5.65 warp-instr/cycle/SM
        assert K80_SPEC.warp_issue_rate() == pytest.approx(5.65, abs=0.1)

    def test_effective_rate_below_theoretical(self):
        assert (K80_SPEC.effective_issue_rate()
                < K80_SPEC.warp_issue_rate())

    def test_free_computation_bubble(self):
        """§VI-A: the bubble is ~8.6 instructions per byte of traffic
        at theoretical rates."""
        bubble = (K80_SPEC.issued_instructions_per_s
                  / K80_SPEC.dram_bandwidth_theoretical)
        assert bubble == pytest.approx(8.57, abs=0.1)

    def test_dram_bytes_per_cycle(self):
        assert K80_SPEC.dram_bytes_per_cycle() == pytest.approx(
            152e9 / 875e6)

    def test_cycles_seconds_roundtrip(self):
        assert K80_SPEC.cycles_to_seconds(875e6) == pytest.approx(1.0)

    def test_pcie_latency_cycles(self):
        assert K80_SPEC.pcie_latency_cycles() == pytest.approx(
            8e-6 * 875e6)

    def test_with_overrides(self):
        slow = K80_SPEC.with_overrides(num_sms=1)
        assert slow.num_sms == 1
        assert K80_SPEC.num_sms == 13  # original untouched

    def test_registers_doubled_vs_k40(self):
        """§VII: the K80 (GK210) doubled the register file, which is
        what makes 64 regs/thread at full occupancy possible."""
        assert K80_SPEC.registers_per_sm == 128 * 1024
