"""Tests for the execution tracer and timeline renderer."""

import pytest

from repro.gpu import Device
from repro.gpu.trace import Tracer, render_timeline


@pytest.fixture
def traced():
    device = Device(memory_bytes=8 * 1024 * 1024)
    src = device.alloc(64 * 1024)
    tracer = Tracer()

    def kern(ctx):
        for i in range(4):
            ctx.charge(10, chain=10)
            _ = yield from ctx.load(src + ctx.global_tid * 4, "f4")
        yield from ctx.compute(30)
        yield from ctx.syncthreads()

    device.launch(kern, grid=1, block_threads=64, tracer=tracer)
    return tracer


class TestTracer:
    def test_events_recorded(self, traced):
        assert traced.events
        kinds = {e.kind for e in traced.events}
        assert "memaccess" in kinds
        assert "compute" in kinds

    def test_events_have_positive_duration(self, traced):
        assert all(e.duration >= 0 for e in traced.events)

    def test_by_kind_totals(self, traced):
        agg = traced.by_kind()
        assert agg["memaccess"]["count"] == 2 * 4  # 2 warps x 4 loads
        assert agg["memaccess"]["cycles"] > 0

    def test_per_warp_filter(self, traced):
        warps = traced.warps()
        assert len(warps) == 2
        only = traced.for_warp(warps[0])
        assert all(e.warp == warps[0] for e in only)

    def test_span_covers_events(self, traced):
        t0, t1 = traced.span()
        assert t0 <= min(e.start for e in traced.events)
        assert t1 >= max(e.end for e in traced.events)

    def test_summary_text(self, traced):
        text = traced.summary()
        assert "memaccess" in text
        assert "events" in text

    def test_drop_cap(self):
        t = Tracer(max_events=1)
        t.record(0, 0, "compute", 0, 1)
        t.record(0, 0, "compute", 1, 2)
        assert len(t.events) == 1
        assert t.dropped == 1

    def test_untraced_launch_records_nothing(self):
        device = Device(memory_bytes=8 * 1024 * 1024)

        def kern(ctx):
            yield from ctx.compute(5)

        result = device.launch(kern, grid=1, block_threads=32)
        assert result.cycles > 0  # simply must not blow up


class TestTimeline:
    def test_renders_rows_per_warp(self, traced):
        art = render_timeline(traced, width=40)
        lines = art.splitlines()
        assert len(lines) == 4  # header + 2 warps + legend
        assert lines[0].startswith("bucket_cycles=")
        assert lines[1].startswith("w")
        assert len(lines[1]) <= 7 + 40

    def test_empty_trace(self):
        assert render_timeline(Tracer()) == "(empty trace)"

    def test_contains_memory_glyph(self, traced):
        art = render_timeline(traced, width=60)
        assert "m" in art.split("\n")[1] + art.split("\n")[2]

    def test_bucket_header_reports_bucket_size(self, traced):
        t0, t1 = traced.span()
        header = render_timeline(traced, width=40).splitlines()[0]
        assert f"bucket_cycles={(t1 - t0) / 40:g}" in header
        assert "warps=2" in header

    def test_event_ending_at_span_end_lands_in_last_bucket(self):
        # Regression: `hi == width` after integer bucketing used to
        # fall off the row; the closing event must colour the final
        # column, not a phantom bucket past it.
        t = Tracer()
        t.record(0, 0, "compute", 0.0, 40.0)
        t.record(0, 0, "memaccess", 90.0, 100.0)
        art = render_timeline(t, width=10)
        row = art.splitlines()[1]
        assert row.endswith("m")

    def test_more_warps_footer(self):
        t = Tracer()
        for w in range(20):
            t.record(w, 0, "compute", 0.0, 10.0)
        art = render_timeline(t, width=20)
        lines = art.splitlines()
        assert lines[-1] == "(+4 more warps)"
        # header + 16 rows + legend + footer
        assert len(lines) == 1 + 16 + 1 + 1

    def test_no_footer_with_explicit_warp_selection(self):
        t = Tracer()
        for w in range(20):
            t.record(w, 0, "compute", 0.0, 10.0)
        art = render_timeline(t, width=20, warps=[0, 1])
        assert "more warps" not in art
        assert len(art.splitlines()) == 1 + 2 + 1
