"""Vectorized engine ≡ event-heap engine, bit for bit.

The vectorized per-SM hot loop (``engine mode "vector"``) must be an
*observationally invisible* optimisation: for every workload in the
registry — including the write-capable syscall workloads under the
runtime sanitizer — cycles, stats, and memory effects must be
bit-identical to the reference event-heap engine (mode ``"event"``).
Instrumented runs (tracer on) must not perturb timing either.
"""

import warnings

import pytest

from repro.gpu import Device, K80_SPEC, Tracer
from repro.gpu.engine import (
    ENGINE_MODE_ENV,
    default_engine_mode,
    engine_mode,
    set_engine_mode,
)
from repro.workloads import WORKLOADS
from repro.workloads.base import run_workload


def _run_suite_workload(workload, *, use_apointers):
    device = Device(spec=K80_SPEC, memory_bytes=16 * 1024 * 1024)
    return run_workload(workload, device,
                        use_apointers=use_apointers,
                        nblocks=2, warps_per_block=2,
                        iters_per_thread=2)


class TestModeSelection:
    def test_default_is_vector(self):
        assert default_engine_mode() == "vector"

    def test_context_manager_restores(self):
        before = default_engine_mode()
        with engine_mode("event"):
            assert default_engine_mode() == "event"
        assert default_engine_mode() == before

    def test_env_var_wins(self, monkeypatch):
        monkeypatch.setenv(ENGINE_MODE_ENV, "event")
        assert default_engine_mode() == "event"

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown engine mode"):
            set_engine_mode("turbo")
        with pytest.raises(ValueError, match="unknown engine mode"):
            with engine_mode("scalar"):
                pass  # pragma: no cover


class TestWorkloadRegistryEquivalence:
    """Every §VI-B workload, raw pointers and apointers, both modes."""

    @pytest.mark.parametrize("workload", WORKLOADS,
                             ids=[w.name for w in WORKLOADS])
    def test_apointer_run_bit_identical(self, workload):
        with engine_mode("event"):
            ref = _run_suite_workload(workload, use_apointers=True)
        with engine_mode("vector"):
            vec = _run_suite_workload(workload, use_apointers=True)
        assert ref.verified and vec.verified
        assert vec.cycles == ref.cycles
        assert vec.seconds == ref.seconds
        assert vec.dram_bytes == ref.dram_bytes
        assert vec.instructions == ref.instructions

    @pytest.mark.parametrize("workload", WORKLOADS[:2],
                             ids=[w.name for w in WORKLOADS[:2]])
    def test_raw_pointer_run_bit_identical(self, workload):
        with engine_mode("event"):
            ref = _run_suite_workload(workload, use_apointers=False)
        with engine_mode("vector"):
            vec = _run_suite_workload(workload, use_apointers=False)
        assert vec.cycles == ref.cycles
        assert vec.instructions == ref.instructions


class TestSyscallWorkloadEquivalence:
    """Write-capable syscall workloads, runtime sanitizer on."""

    def test_kvstore_sanitized_bit_identical(self):
        from repro.workloads import run_kvstore
        kwargs = dict(nwarps=2, records_per_warp=32, ops_per_warp=4,
                      sanitize=True)
        with engine_mode("event"):
            ref = run_kvstore(**kwargs)
        with engine_mode("vector"):
            vec = run_kvstore(**kwargs)
        assert ref.verified and vec.verified
        assert vec.cycles == ref.cycles
        assert (vec.preads, vec.pwrites, vec.msyncs) \
            == (ref.preads, ref.pwrites, ref.msyncs)
        assert vec.writeback_bytes == ref.writeback_bytes

    def test_grepscan_sanitized_bit_identical(self):
        from repro.workloads import run_grepscan
        kwargs = dict(nwarps=2, pages_per_warp=2, sanitize=True)
        with engine_mode("event"):
            ref = run_grepscan(**kwargs)
        with engine_mode("vector"):
            vec = run_grepscan(**kwargs)
        assert ref.verified and vec.verified
        assert vec.cycles == ref.cycles
        assert vec.bytes_scanned == ref.bytes_scanned

    def test_graphwalk_sanitized_bit_identical(self):
        from repro.workloads import run_graphwalk
        kwargs = dict(nwarps=2, steps=4, nnodes=8 * 1024, sanitize=True)
        with engine_mode("event"):
            ref = run_graphwalk(**kwargs)
        with engine_mode("vector"):
            vec = run_graphwalk(**kwargs)
        assert ref.verified and vec.verified
        assert vec.cycles == ref.cycles
        assert vec.edges == ref.edges


def _contended_kernel_device():
    """A kernel mixing the stall classes the tables track: compute
    chains, loads, atomics, and barriers."""
    device = Device(memory_bytes=8 * 1024 * 1024)
    src = device.alloc(256 * 1024)
    counter = device.alloc(64)

    # Named so the calibration linter can see these are deliberate
    # synthetic loads, not drifted hardware estimates.
    charge_block = 10
    tail_block = 30

    def kern(ctx):
        for i in range(3):
            ctx.charge(charge_block, chain=charge_block)
            _ = yield from ctx.load(src + ctx.global_tid * 4, "f4")
        yield from ctx.atomic_add(counter, 1)
        yield from ctx.syncthreads()
        yield from ctx.compute(tail_block)

    return device, kern


class TestInstrumentationInvisible:
    def test_traced_equals_untraced_in_vector_mode(self):
        with engine_mode("vector"):
            device, kern = _contended_kernel_device()
            plain = device.launch(kern, grid=2, block_threads=64)
            device2, kern2 = _contended_kernel_device()
            tracer = Tracer()
            traced = device2.launch(kern2, grid=2, block_threads=64,
                                    tracer=tracer)
        assert traced.cycles == plain.cycles
        assert traced.stats == plain.stats
        assert tracer.events

    def test_contended_kernel_bit_identical_across_modes(self):
        with engine_mode("event"):
            device, kern = _contended_kernel_device()
            ref = device.launch(kern, grid=4, block_threads=128)
        with engine_mode("vector"):
            device, kern = _contended_kernel_device()
            vec = device.launch(kern, grid=4, block_threads=128)
        assert vec.cycles == ref.cycles
        assert vec.stats == ref.stats


class TestStallCensus:
    def test_vector_census_uses_stall_names(self):
        from repro.gpu.engine import Engine, STALL_NAMES
        with engine_mode("vector"):
            engine = Engine(K80_SPEC, 1)
            census = engine.stall_census()
        assert set(census) <= set(STALL_NAMES.values())

    def test_event_census_reports_queue_depth(self):
        from repro.gpu.engine import Engine
        with engine_mode("event"):
            engine = Engine(K80_SPEC, 1)
            assert engine.stall_census() == {"queued": 0}


class TestExperimentRegistryEquivalence:
    """A full registered experiment produces identical rows per mode."""

    def test_table2_rows_identical(self):
        from repro.harness.experiments import ALL_EXPERIMENTS
        with engine_mode("event"):
            ref = ALL_EXPERIMENTS["table2"](scale="quick")
        with engine_mode("vector"):
            vec = ALL_EXPERIMENTS["table2"](scale="quick")
        assert vec.rows == ref.rows


def _assert_warns_exactly_once(trigger, match):
    """``trigger()`` warns DeprecationWarning on the first call and is
    silent on the second (the warn-once contract)."""
    with pytest.warns(DeprecationWarning, match=match):
        trigger()
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        trigger()


class TestDeprecatedEngineShims:
    @pytest.fixture(autouse=True)
    def _fresh_warning_state(self):
        from repro.gpu import engine as engine_mod
        saved = set(engine_mod._WARNED)
        engine_mod._WARNED.clear()
        yield
        engine_mod._WARNED.clear()
        engine_mod._WARNED.update(saved)

    def test_engine_run_warns_once(self):
        from repro.gpu.engine import Engine
        _assert_warns_exactly_once(
            lambda: Engine(K80_SPEC, 1).run([]),
            match="Engine.run")

    def test_engine_run_groups_warns_once(self):
        from repro.gpu.engine import Engine
        _assert_warns_exactly_once(
            lambda: Engine(K80_SPEC, 1).run_groups([[]]),
            match="Engine.run_groups")

    def test_engine_tracer_kwarg_warns_once(self):
        from repro.gpu.engine import Engine
        _assert_warns_exactly_once(
            lambda: Engine(K80_SPEC, 1, tracer=Tracer()),
            match="EngineHooks")

    def test_unknown_engine_kwarg_rejected(self):
        from repro.gpu.engine import Engine
        with pytest.raises(TypeError, match="unexpected keyword"):
            Engine(K80_SPEC, 1, profiler=object())

    def test_hooks_and_legacy_kwarg_conflict(self):
        from repro.gpu.engine import Engine
        from repro.gpu.launch import EngineHooks
        with pytest.raises(TypeError, match="both"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                Engine(K80_SPEC, 1, hooks=EngineHooks(tracer=Tracer()),
                       tracer=Tracer())

    def test_run_shim_matches_launch(self):
        from repro.gpu.engine import Engine
        device, kern = _contended_kernel_device()
        via_launch = device.launch(kern, grid=2, block_threads=64)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            cycles = Engine(K80_SPEC, 1).run([])
        assert cycles == 0.0
        assert via_launch.cycles > 0


class TestLaunchPlanValidation:
    def test_single_wraps_factories(self):
        from repro.gpu.launch import LaunchPlan
        plan = LaunchPlan.single([lambda: None])
        assert plan.num_groups == 1

    def test_flat_factory_list_rejected(self):
        from repro.gpu.launch import LaunchPlan
        with pytest.raises(TypeError, match="groups"):
            LaunchPlan(groups=[lambda: None])

    def test_callable_groups_rejected(self):
        from repro.gpu.launch import LaunchPlan
        with pytest.raises(TypeError):
            LaunchPlan(groups=lambda: None)
