"""Unit and property tests for CUDA warp intrinsic semantics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu import warp_primitives as wp


class TestBallot:
    def test_all_true_gives_full_mask(self):
        assert wp.ballot(np.ones(32, bool)) == wp.FULL_MASK

    def test_all_false_gives_zero(self):
        assert wp.ballot(np.zeros(32, bool)) == 0

    def test_single_lane(self):
        pred = np.zeros(32, bool)
        pred[7] = True
        assert wp.ballot(pred) == 1 << 7

    def test_inactive_lanes_contribute_zero(self):
        pred = np.ones(32, bool)
        active = np.zeros(32, bool)
        active[3] = True
        assert wp.ballot(pred, active) == 1 << 3


class TestAllAny:
    def test_all_true(self):
        assert wp.all_sync(np.ones(32, bool))

    def test_all_with_one_false(self):
        pred = np.ones(32, bool)
        pred[31] = False
        assert not wp.all_sync(pred)

    def test_all_ignores_inactive_lanes(self):
        pred = np.zeros(32, bool)
        pred[0] = True
        active = np.zeros(32, bool)
        active[0] = True
        assert wp.all_sync(pred, active)

    def test_all_vacuously_true_with_no_active_lanes(self):
        assert wp.all_sync(np.zeros(32, bool), np.zeros(32, bool))

    def test_any_true(self):
        pred = np.zeros(32, bool)
        pred[13] = True
        assert wp.any_sync(pred)

    def test_any_false(self):
        assert not wp.any_sync(np.zeros(32, bool))


class TestShuffle:
    def test_shfl_broadcasts_source_lane(self):
        vals = np.arange(32)
        assert np.all(wp.shfl(vals, 5) == 5)

    def test_shfl_xor_is_involution(self):
        vals = np.arange(32)
        once = wp.shfl_xor(vals, 4)
        twice = wp.shfl_xor(once, 4)
        assert np.array_equal(twice, vals)

    def test_shfl_xor_butterfly(self):
        vals = np.arange(32)
        out = wp.shfl_xor(vals, 1)
        assert out[0] == 1 and out[1] == 0 and out[30] == 31

    def test_shfl_down_clamps_at_edge(self):
        vals = np.arange(32)
        out = wp.shfl_down(vals, 1)
        assert out[31] == 31
        assert out[0] == 1

    def test_shfl_idx_indexed_read(self):
        vals = np.arange(32) * 10
        out = wp.shfl_idx(vals, np.zeros(32, dtype=np.int64))
        assert np.all(out == 0)


class TestBitOps:
    @pytest.mark.parametrize("mask,expected", [
        (0, 0), (1, 1), (2, 2), (0b1000, 4), (wp.FULL_MASK, 1),
        (1 << 31, 32),
    ])
    def test_ffs(self, mask, expected):
        assert wp.ffs(mask) == expected

    @pytest.mark.parametrize("mask,expected", [
        (0, 0), (1, 1), (0b1011, 3), (wp.FULL_MASK, 32),
    ])
    def test_popc(self, mask, expected):
        assert wp.popc(mask) == expected


class TestProperties:
    @given(st.lists(st.booleans(), min_size=32, max_size=32))
    def test_popc_of_ballot_counts_true_lanes(self, bits):
        pred = np.array(bits)
        assert wp.popc(wp.ballot(pred)) == int(pred.sum())

    @given(st.lists(st.booleans(), min_size=32, max_size=32))
    def test_ffs_of_ballot_finds_first_true_lane(self, bits):
        pred = np.array(bits)
        pos = wp.ffs(wp.ballot(pred))
        if not pred.any():
            assert pos == 0
        else:
            assert pos == int(np.argmax(pred)) + 1

    @given(st.lists(st.booleans(), min_size=32, max_size=32))
    def test_all_equals_ballot_full(self, bits):
        pred = np.array(bits)
        assert wp.all_sync(pred) == (wp.ballot(pred) == wp.FULL_MASK)

    @given(st.integers(min_value=0, max_value=31),
           st.lists(st.integers(-1000, 1000), min_size=32, max_size=32))
    def test_shfl_broadcast_from_any_lane(self, lane, vals):
        arr = np.array(vals)
        assert np.all(wp.shfl(arr, lane) == vals[lane])
