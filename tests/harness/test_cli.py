"""CLI behaviour: markdown output, profile-dir wiring, failure paths."""

import json
import os

import pytest

from repro.harness import cli
from repro.harness.experiments import ALL_EXPERIMENTS
from repro.telemetry import validate_profile


class TestMarkdownOutput:
    def test_creates_missing_parent_directories(self, tmp_path, capsys):
        target = tmp_path / "deep" / "nested" / "results.md"
        rc = cli.main(["table1", "--markdown", str(target)])
        assert rc == 0
        text = target.read_text()
        assert text.startswith("# Reproduction results")
        assert "wall time:" in text

    def test_failed_experiment_writes_partial_markdown(
            self, tmp_path, monkeypatch, capsys):
        target = tmp_path / "results.md"

        def boom(scale="quick"):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(ALL_EXPERIMENTS, "table1", boom)
        with pytest.raises(RuntimeError, match="synthetic failure"):
            cli.main(["table1", "--markdown", str(target)])
        text = target.read_text()
        assert "PARTIAL" in text
        assert "table1 — FAILED" in text
        assert "partial results" in capsys.readouterr().err

    def test_failure_without_markdown_still_raises(self, monkeypatch,
                                                   capsys):
        def boom(scale="quick"):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(ALL_EXPERIMENTS, "table1", boom)
        with pytest.raises(RuntimeError):
            cli.main(["table1"])


class TestProfileDir:
    def test_profiles_written_and_schema_valid(self, tmp_path, capsys):
        rc = cli.main(["table1", "--profile-dir", str(tmp_path)])
        assert rc == 0
        out_dir = tmp_path / "table1"
        profiles = sorted(out_dir.glob("profile-*.json"))
        traces = sorted(out_dir.glob("trace-*.json"))
        assert profiles
        assert traces
        for path in profiles:
            validate_profile(json.loads(path.read_text()))
        # the textual summary reaches the terminal too
        assert "warp stalls" in capsys.readouterr().out

    def test_no_profiles_without_flag(self, tmp_path, capsys):
        rc = cli.main(["table1"])
        assert rc == 0
        assert not os.listdir(tmp_path)


class TestEvictionPolicyFlag:
    def test_policy_reaches_experiments_that_take_it(self, capsys):
        rc = cli.main(["ablation_eviction", "--eviction-policy", "lru"])
        assert rc == 0
        out = capsys.readouterr().out
        # The sweep collapsed to the requested policy only.
        assert "lru" in out
        assert "fifo" not in out and "random" not in out

    def test_experiments_without_the_knob_still_run(self, capsys):
        rc = cli.main(["table1", "--eviction-policy", "lru"])
        assert rc == 0

    def test_unknown_policy_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["ablation_eviction", "--eviction-policy", "mru"])


class TestArgErrors:
    def test_unknown_experiment_is_an_error(self, capsys):
        assert cli.main(["not-an-experiment"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_no_experiments_is_an_error(self, capsys):
        assert cli.main([]) == 2
