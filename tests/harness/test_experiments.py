"""Tests for the experiment harness (fast experiments only; the heavy
sweeps run in benchmarks/)."""

import pytest

from repro.harness import ALL_EXPERIMENTS, format_result
from repro.harness.experiments import TABLE1_PAPER, ExperimentResult
from repro.harness.reporting import format_markdown


class TestRegistry:
    def test_all_tables_and_figures_present(self):
        expected = {"table1", "table2", "table3", "figure6a", "figure6b",
                    "figure6c", "figure7", "figure9", "unaligned",
                    "ablation_prefetch", "ablation_batching",
                    "ablation_registers", "ablation_eviction",
                    "ablation_readahead", "ablation_future_hw",
                    "ablation_io_preemption"}
        assert expected <= set(ALL_EXPERIMENTS)

    def test_registry_entries_accept_scale(self):
        result = ALL_EXPERIMENTS["table1"](scale="quick")
        assert isinstance(result, ExperimentResult)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return ALL_EXPERIMENTS["table1"]()

    def test_has_all_paper_cells(self, result):
        assert len(result.rows) == len(TABLE1_PAPER)

    def test_every_cell_close_to_paper(self, result):
        for row in result.rows:
            assert row["measured"] == pytest.approx(row["paper"],
                                                    rel=0.10)

    def test_row_lookup(self, result):
        row = result.row_by(implementation="Compiler", op="inc")
        assert row["paper"] == 152

    def test_row_lookup_missing_raises(self, result):
        with pytest.raises(KeyError):
            result.row_by(implementation="nope")


class TestAblations:
    def test_prefetch_helps_latency(self):
        result = ALL_EXPERIMENTS["ablation_prefetch"]()
        pf = result.row_by(variant="prefetching")
        ptx = result.row_by(variant="optimized_ptx")
        assert pf["read_latency_cycles"] < ptx["read_latency_cycles"]

    def test_batching_helps(self):
        result = ALL_EXPERIMENTS["ablation_batching"]()
        on = result.row_by(batching=True)
        off = result.row_by(batching=False)
        assert on["cycles"] < off["cycles"]

    def test_register_pressure_halves_occupancy(self):
        result = ALL_EXPERIMENTS["ablation_registers"]()
        assert result.row_by(regs_per_thread=128)["blocks_per_sm"] == 1
        assert result.row_by(regs_per_thread=128)["slowdown_vs_64"] > 1.2

    def test_future_hw_cuts_increment_cost(self):
        result = ALL_EXPERIMENTS["ablation_future_hw"]()
        hw = result.row_by(variant="hw_assisted")
        sw = result.row_by(variant="prefetching")
        assert hw["inc_latency_cycles"] < sw["inc_latency_cycles"] / 2

    def test_removed_wrapper_names_are_gone(self):
        import repro.harness as harness
        for name in ("table1", "figure7", "ablation_prefetch"):
            assert not hasattr(harness, name)


class TestReporting:
    @pytest.fixture(scope="class")
    def result(self):
        return ALL_EXPERIMENTS["table1"]()

    def test_text_table_contains_all_rows(self, result):
        text = format_result(result)
        assert "table1" in text
        assert "Prefetching" in text
        assert text.count("\n") >= len(result.rows) + 2

    def test_markdown_table(self, result):
        md = format_markdown(result)
        assert md.startswith("### table1")
        assert md.count("|") > len(result.rows) * 3


class TestCLI:
    def test_list(self, capsys):
        from repro.harness.cli import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure9" in out

    def test_unknown_experiment_rejected(self, capsys):
        from repro.harness.cli import main
        assert main(["not-an-experiment"]) == 2

    def test_no_args_is_usage_error(self, capsys):
        from repro.harness.cli import main
        assert main([]) == 2

    def test_runs_and_writes_markdown(self, tmp_path, capsys):
        from repro.harness.cli import main
        md = tmp_path / "out.md"
        assert main(["table1", "--markdown", str(md)]) == 0
        assert "Prefetching" in md.read_text()
