"""Heartbeat plumbing: sender rate limiting, the single-writer
renderer, live runs (serial and spawn-parallel), and repro-top."""

import io
import json
import os

from repro.harness.heartbeat import (
    HeartbeatRenderer,
    HeartbeatSender,
    cache_hit_rate,
    make_heartbeat,
)
from repro.harness.runner import (
    Instrumentation,
    LiveOptions,
    run_experiment,
)
from repro.telemetry import validate_profile
from repro.telemetry.top import Dashboard
from repro.telemetry.top import main as top_main

from tests.harness.test_runner import SYNTH

# Real experiments for live runs: table2 touches the full stack.
from repro.harness.registry import REGISTRY  # noqa: E402
import repro.harness.experiments  # noqa: F401  (populates REGISTRY)


def window_record(index, busy=50.0, width=100.0, **extra):
    rec = {"window": index, "t0": index * width,
           "t1": (index + 1) * width, "sm_busy": [busy],
           "dram_bytes": 0, "pcie_bytes": 0,
           "counters": {}, "gauges": {}}
    rec.update(extra)
    return rec


class TestSender:
    def test_lifecycle_beats_always_pass(self):
        seen = []
        sender = HeartbeatSender(seen.append, min_interval=3600.0)
        for kind in ("start", "point_done", "run_done"):
            sender.send(make_heartbeat(kind, "e"))
        assert [b["kind"] for b in seen] \
            == ["start", "point_done", "run_done"]

    def test_window_beats_rate_limited(self):
        seen = []
        sender = HeartbeatSender(seen.append, min_interval=3600.0)
        for i in range(5):
            sender.window_beat("e", 0, window_record(i))
        assert len(seen) == 1           # first passes, rest throttled
        assert sender.throttled == 4

    def test_zero_interval_passes_everything(self):
        seen = []
        sender = HeartbeatSender(seen.append, min_interval=0.0)
        for i in range(5):
            sender.window_beat("e", 0, window_record(i))
        assert len(seen) == 5

    def test_window_beat_reduces_record(self):
        seen = []
        sender = HeartbeatSender(seen.append, min_interval=0.0)
        sender.window_beat("e", 2, window_record(7, busy=25.0,
                                                 dram_bytes=512))
        (beat,) = seen
        assert beat["kind"] == "window"
        assert beat["point"] == 2 and beat["window"] == 7
        assert beat["sm_busy_frac"] == [0.25]
        assert beat["dram_bytes"] == 512

    def test_broken_channel_never_raises(self):
        def boom(_beat):
            raise OSError("pipe gone")
        sender = HeartbeatSender(boom, min_interval=0.0)
        sender.send(make_heartbeat("start", "e"))   # must not raise


class TestRenderer:
    def test_single_writer_line_and_counts(self):
        out = io.StringIO()
        r = HeartbeatRenderer(show=True, stream=out)
        r.handle(make_heartbeat("start", "exp", points=3, jobs=2))
        r.handle(make_heartbeat("point_done", "exp", point=0, ok=True))
        r.handle(make_heartbeat("point_done", "exp", point=1,
                                ok=False))
        r.handle(make_heartbeat("run_done", "exp"))
        text = out.getvalue()
        last = text.rstrip("\n").split("\r")[-1]
        assert last.startswith("[exp] 2/3 points (2 workers)")
        assert "1 failed" in last
        assert text.endswith("\n")      # close() terminated the line

    def test_no_progress_mode_writes_files_not_terminal(self, tmp_path):
        out = io.StringIO()
        r = HeartbeatRenderer(show=False, stream=out,
                              live_dir=str(tmp_path))
        r.handle(make_heartbeat("start", "exp", points=1, jobs=1))
        r.handle(make_heartbeat("run_done", "exp"))
        assert out.getvalue() == ""
        beats = [json.loads(line) for line in
                 (tmp_path / "heartbeats.jsonl").read_text()
                 .splitlines()]
        assert [b["kind"] for b in beats] == ["start", "run_done"]
        assert (tmp_path / "metrics.prom").exists()

    def test_window_beats_surface_busy_and_cache(self):
        out = io.StringIO()
        r = HeartbeatRenderer(show=True, stream=out)
        r.handle(make_heartbeat("start", "exp", points=2, jobs=1))
        r.handle(make_heartbeat(
            "window", "exp", point=0, window=0,
            sm_busy_frac=[0.5, 0.7], dram_bytes=0, pcie_bytes=0,
            counters={"paging.minor_faults": 3,
                      "paging.major_faults": 1}, gauges={}))
        last = out.getvalue().split("\r")[-1]
        assert "busy 60%" in last
        assert "cache 75%" in last

    def test_cache_hit_rate_none_without_faults(self):
        assert cache_hit_rate({}) is None
        assert cache_hit_rate({"counter.paging.minor_faults": 3,
                               "counter.paging.major_faults": 1}) \
            == 0.75


class TestLiveRuns:
    def test_serial_live_run_writes_streaming_layout(self, tmp_path):
        live = LiveOptions(live_dir=str(tmp_path), window_cycles=2000.0)
        report = run_experiment(REGISTRY["table2"], jobs=1,
                                progress=False,
                                instrument=Instrumentation(live=live))
        assert report.ok
        # live implies profiling: merged suite profile is schema v6
        # with the concatenated series.
        validate_profile(report.merged)
        series = report.merged["components"]["timeseries"]
        assert series["enabled"] == len(report.profiles)
        assert series["windows"] == len(series["series"]) > 0
        # one series file per point, meta-stamped records
        points = len(REGISTRY["table2"].grid("quick"))
        files = sorted(f for f in os.listdir(tmp_path)
                       if f.startswith("series-"))
        assert len(files) == points
        rec = json.loads(
            (tmp_path / files[0]).read_text().splitlines()[0])
        assert rec["experiment"] == "table2"
        assert rec["point"] == 0 and rec["window"] == 0
        # parent wrote the heartbeat stream and a Prometheus snapshot
        kinds = [json.loads(line)["kind"] for line in
                 (tmp_path / "heartbeats.jsonl").read_text()
                 .splitlines()]
        assert kinds[0] == "start" and kinds[-1] == "run_done"
        assert kinds.count("point_done") == points
        assert "window" in kinds
        prom = (tmp_path / "metrics.prom").read_text()
        assert "repro_points_done" in prom

    def test_live_does_not_perturb_rows(self, tmp_path):
        plain = run_experiment(SYNTH, jobs=1, progress=False)
        live = run_experiment(
            SYNTH, jobs=1, progress=False,
            instrument=Instrumentation(
                live=LiveOptions(live_dir=str(tmp_path))))
        assert plain.result.rows == live.result.rows

    def test_parallel_live_run_heartbeats_cross_process(self, tmp_path):
        live = LiveOptions(live_dir=str(tmp_path), window_cycles=2000.0,
                           heartbeat_interval=0.0)
        report = run_experiment(REGISTRY["table2"], jobs=2,
                                progress=False,
                                instrument=Instrumentation(live=live))
        assert report.ok and report.jobs == 2
        validate_profile(report.merged)
        beats = [json.loads(line) for line in
                 (tmp_path / "heartbeats.jsonl").read_text()
                 .splitlines()]
        windows = [b for b in beats if b["kind"] == "window"]
        assert windows, "workers must ship window beats to the parent"
        # window beats carry worker pids, not the parent's
        assert all(b["pid"] != os.getpid() for b in windows)
        assert {b["pid"] for b in windows if True} \
            <= {o.worker_pid for o in report.outcomes}
        # every point's series file was written by its worker
        points = len(REGISTRY["table2"].grid("quick"))
        files = [f for f in os.listdir(tmp_path)
                 if f.startswith("series-")]
        assert len(files) == points

    def test_repro_top_renders_live_dir(self, tmp_path, capsys):
        live = LiveOptions(live_dir=str(tmp_path), window_cycles=2000.0,
                           heartbeat_interval=0.0)
        run_experiment(REGISTRY["table2"], jobs=2, progress=False,
                       instrument=Instrumentation(live=live))
        rc = top_main([str(tmp_path), "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro-top — table2 [done]" in out
        assert "SM0" in out and "[#" in out
        assert "dram" in out
        assert "2 worker(s) heard" in out

    def test_repro_top_rejects_missing_dir(self, tmp_path, capsys):
        rc = top_main([str(tmp_path / "absent"), "--once"])
        assert rc == 2


class TestDashboardIncrementalTail:
    def test_partial_lines_reread_next_poll(self, tmp_path):
        hb = tmp_path / "heartbeats.jsonl"
        hb.write_text(json.dumps(make_heartbeat(
            "start", "exp", points=2, jobs=1)) + "\n")
        dash = Dashboard(str(tmp_path))
        dash.poll()
        assert dash.points_total == 2
        # Append one whole line and one torn line (writer mid-flush).
        whole = json.dumps(make_heartbeat("point_done", "exp",
                                          point=0, ok=True))
        with open(hb, "a") as f:
            f.write(whole + "\n" + '{"kind": "point_d')
        dash.poll()
        assert dash.points_done == 1
        with open(hb, "a") as f:         # writer finishes the line
            f.write('one", "experiment": "exp", "point": 1, '
                    '"ok": true}\n')
        dash.poll()
        assert dash.points_done == 2
