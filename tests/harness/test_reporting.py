"""Reporting: cell rendering, alignment, and profile summaries."""

import math

from repro.gpu import Device
from repro.harness.experiments import ExperimentResult
from repro.harness.reporting import (
    _cell,
    format_markdown,
    format_profile,
    format_result,
)
from repro.telemetry import capture


class TestCell:
    def test_none_renders_as_dash(self):
        assert _cell(None) == "-"

    def test_nan_is_labeled(self):
        assert _cell(float("nan")) == "NaN"

    def test_infinities_are_signed(self):
        assert _cell(math.inf) == "+inf"
        assert _cell(-math.inf) == "-inf"

    def test_finite_floats_compact(self):
        assert _cell(1.5) == "1.5"
        assert _cell(3.0) == "3"

    def test_strings_pass_through(self):
        assert _cell("clock") == "clock"


class TestFormatResult:
    def _result(self):
        return ExperimentResult(
            exp_id="t", title="T", columns=["name", "value", "flag"],
            rows=[
                {"name": "long-name", "value": 1.25, "flag": True},
                {"name": "x", "value": 1500.0, "flag": False},
                {"name": "nan-case", "value": float("nan"), "flag": True},
                {"name": "none-case", "value": None, "flag": False},
            ])

    def test_numeric_column_right_aligned(self):
        lines = format_result(self._result()).splitlines()
        cells = [line.split(" | ")[1] for line in lines[3:]]
        assert cells[0].endswith("1.25")
        assert cells[1].endswith("1500")
        # NaN / None render explicitly, right-aligned with the numbers.
        assert cells[2].endswith("NaN")
        assert cells[3].endswith("-")

    def test_text_column_left_aligned(self):
        lines = format_result(self._result()).splitlines()
        assert lines[3].startswith("long-name ")
        # bools are text, not numbers
        assert lines[3].split(" | ")[2].startswith("True")

    def test_markdown_wall_time(self):
        md = format_markdown(self._result(), elapsed=12.34)
        assert "*wall time: 12.3s*" in md
        assert "| NaN |" in md
        assert "| - |" in md

    def test_markdown_without_elapsed_unchanged(self):
        assert "wall time" not in format_markdown(self._result())


class TestFormatProfile:
    def test_summary_contains_headline_sections(self):
        with capture() as prof:
            device = Device(memory_bytes=8 * 1024 * 1024)
            src = device.alloc(4096)

            def kern(ctx):
                v = yield from ctx.load(src + ctx.lane * 4, "f4")
                yield from ctx.store(src + ctx.lane * 4, v, "f4")
                yield from ctx.syncthreads()

            device.launch(kern, grid=2, block_threads=64)
        text = format_profile(prof.longest())
        assert "dram" in text
        assert "SMs" in text
        assert "warp stalls" in text
        assert "GB/s" in text
        # accepts the raw dict too
        assert format_profile(prof.longest().to_dict()) == text
