"""Parallel runner: determinism across job counts, worker-failure
capture, seeding, and the CLI exit-code contract.

The synthetic experiments live at module level so spawn workers can
unpickle their point functions by reference (``tests.harness`` is a
package, so the module imports cleanly in a fresh interpreter).
"""

import json
import warnings

import pytest

from repro.harness import cli
from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.registry import REGISTRY, Column, Experiment
from repro.harness.runner import (
    DEFAULT_BASE_SEED,
    ExperimentPointError,
    Instrumentation,
    point_seed,
    run_experiment,
)
from repro.telemetry import validate_profile

# ----------------------------------------------------------------------
# Synthetic experiments (module-level for spawn picklability)
# ----------------------------------------------------------------------


def _synth_grid(scale):
    return [{"value": v} for v in (1, 2, 3, 4)]


def _synth_point(*, scale, value):
    return [{"value": value, "square": value * value}]


def _crashy_point(*, scale, value):
    if value == 3:
        raise RuntimeError(f"synthetic crash at value={value}")
    return [{"value": value, "square": value * value}]


SYNTH = Experiment(
    name="synth", title="synthetic squares",
    columns=(Column("value", role="param"),
             Column("square", role="measured")),
    point=_synth_point, grid=_synth_grid)

CRASHY = Experiment(
    name="crashy", title="synthetic squares, one point crashes",
    columns=(Column("value", role="param"),
             Column("square", role="measured")),
    point=_crashy_point, grid=_synth_grid)


class TestSeeding:
    def test_seed_is_stable(self):
        a = point_seed("table1", 3, {"op": "read"})
        b = point_seed("table1", 3, {"op": "read"})
        assert a == b
        # Pinned: the seed derivation is part of the determinism
        # contract (changing it silently would change every result).
        assert a == point_seed("table1", 3, {"op": "read"},
                               DEFAULT_BASE_SEED)

    def test_seed_separates_points(self):
        seeds = {point_seed("table1", i, {"op": op})
                 for i in range(4) for op in ("read", "inc")}
        assert len(seeds) == 8

    def test_base_seed_changes_everything(self):
        assert point_seed("x", 0, {"a": 1}, base_seed=1) \
            != point_seed("x", 0, {"a": 1}, base_seed=2)


class TestDeterminism:
    def test_jobs_1_and_4_rows_identical_synthetic(self):
        serial = run_experiment(SYNTH, jobs=1, progress=False)
        parallel = run_experiment(SYNTH, jobs=4, progress=False)
        assert serial.result.rows == parallel.result.rows
        assert serial.result.rows == [
            {"value": v, "square": v * v} for v in (1, 2, 3, 4)]

    def test_jobs_1_and_4_identical_on_real_experiment(self):
        exp = REGISTRY["table1"]
        instrument = Instrumentation(profile=True, trace=False)
        serial = run_experiment(exp, jobs=1, instrument=instrument,
                                progress=False)
        parallel = run_experiment(exp, jobs=4, instrument=instrument,
                                  progress=False)
        assert serial.result.rows == parallel.result.rows
        assert serial.result.columns == parallel.result.columns
        # Merged suite profiles are equivalent up to the run section
        # (worker counts legitimately differ).
        for report in (serial, parallel):
            validate_profile(report.merged)
            assert report.merged["version"] == 8
        s, p = dict(serial.merged), dict(parallel.merged)
        s_run, p_run = s.pop("run"), p.pop("run")
        assert s == p
        assert s_run["workers"]["points"] \
            == p_run["workers"]["points"] == len(serial.outcomes)
        assert p_run["workers"]["jobs"] == 4


class TestFailureCapture:
    def test_crashed_point_spares_siblings(self):
        report = run_experiment(CRASHY, jobs=2, progress=False)
        assert not report.ok
        assert report.result.rows == [
            {"value": v, "square": v * v} for v in (1, 2, 4)]
        (err,) = report.result.errors
        assert err["params"] == {"value": 3}
        assert "synthetic crash" in err["error"]
        assert "RuntimeError" in err["traceback"]

    def test_serial_capture_matches_parallel(self):
        serial = run_experiment(CRASHY, jobs=1, progress=False)
        parallel = run_experiment(CRASHY, jobs=2, progress=False)
        assert serial.result.rows == parallel.result.rows
        assert [e["params"] for e in serial.result.errors] \
            == [e["params"] for e in parallel.result.errors]

    def test_point_error_summarises_first_failure(self):
        report = run_experiment(CRASHY, jobs=1, progress=False)
        exc = ExperimentPointError("crashy", report.result.errors)
        assert "crashy" in str(exc)
        assert "value" in str(exc)
        assert exc.errors is report.result.errors


class TestCliExitCodes:
    def _install(self, monkeypatch, exp):
        def run(scale="quick", **options):
            raise AssertionError("CLI must use the runner path")
        run.experiment = exp
        monkeypatch.setitem(ALL_EXPERIMENTS, "table1", run)

    def test_error_rows_exit_nonzero_without_losing_rows(
            self, monkeypatch, capsys):
        self._install(monkeypatch, CRASHY)
        rc = cli.main(["table1"])
        assert rc == 1
        captured = capsys.readouterr()
        # Sibling rows made it to the table; the failure is explicit.
        assert "16" in captured.out
        assert "synthetic crash" in captured.out
        assert "synthetic crash" in captured.err

    def test_clean_run_exits_zero(self, monkeypatch, capsys):
        self._install(monkeypatch, SYNTH)
        assert cli.main(["table1"]) == 0

    def test_jobs_flag_reaches_runner(self, monkeypatch, capsys,
                                      tmp_path):
        self._install(monkeypatch, SYNTH)
        target = tmp_path / "results.md"
        rc = cli.main(["table1", "--jobs", "2", "--markdown",
                       str(target)])
        assert rc == 0
        assert "2 workers" in capsys.readouterr().out
        assert "| 16 |" in target.read_text()

    def test_markdown_records_failed_points(self, monkeypatch, capsys,
                                            tmp_path):
        self._install(monkeypatch, CRASHY)
        target = tmp_path / "results.md"
        assert cli.main(["table1", "--markdown", str(target)]) == 1
        text = target.read_text()
        assert "failed point" in text
        assert "synthetic crash" in text


class TestSuiteProfileOnDisk:
    def test_cli_writes_current_schema_suite_profile(self, tmp_path,
                                                capsys):
        rc = cli.main(["table1", "--profile-dir", str(tmp_path),
                       "--jobs", "2"])
        assert rc == 0
        path = tmp_path / "table1" / "suite-profile.json"
        doc = json.loads(path.read_text())
        validate_profile(doc)
        assert doc["version"] == 8
        workers = doc["run"]["workers"]
        assert workers["jobs"] == 2
        assert workers["points"] == len(REGISTRY["table1"].grid("quick"))
        assert workers["launches"] >= workers["points"]
        assert workers["errors"] == 0


class TestLegacyInstrumentKwargs:
    """The deprecated per-switch keywords warn exactly once, still
    work, and conflict loudly with the Instrumentation bundle."""

    @pytest.fixture(autouse=True)
    def _fresh_warning_state(self):
        from repro.harness import runner
        saved = set(runner._WARNED)
        runner._WARNED.clear()
        yield
        runner._WARNED.clear()
        runner._WARNED.update(saved)

    def test_profile_kwarg_warns_once_and_works(self):
        with pytest.warns(DeprecationWarning,
                          match=r"run_experiment\(profile=") :
            report = run_experiment(SYNTH, jobs=1, progress=False,
                                    profile=True)
        assert report.ok
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_experiment(SYNTH, jobs=1, progress=False, profile=True)

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            run_experiment(SYNTH, jobs=1, progress=False,
                           tracer=object())

    def test_conflict_with_bundle_rejected(self):
        with pytest.raises(TypeError, match="both"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                run_experiment(SYNTH, jobs=1, progress=False,
                               instrument=Instrumentation(profile=True),
                               profile=True)

    def test_legacy_matches_bundle(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_experiment(SYNTH, jobs=1, progress=False,
                                    profile=True)
        bundled = run_experiment(SYNTH, jobs=1, progress=False,
                                 instrument=Instrumentation(profile=True))
        assert legacy.result.rows == bundled.result.rows
