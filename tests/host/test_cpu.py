"""Tests for the host CPU timing model."""

import pytest

from repro.host.cpu import CPUSpec, HOST_CPU


class TestCPUSpec:
    def test_peak_flops_matches_specsheet(self):
        # 12 cores * 3.6 GHz * 8 f32 lanes * 2 = 691.2 GFLOP/s
        assert HOST_CPU.peak_flops() == pytest.approx(691.2e9)

    def test_compute_bound_phase(self):
        t = HOST_CPU.time_for(flops=1e9)
        assert t == pytest.approx(1e9 / (691.2e9 * HOST_CPU.efficiency))

    def test_memory_bound_phase(self):
        t = HOST_CPU.time_for(flops=1.0, mem_bytes=40e9)
        assert t == pytest.approx(1.0)

    def test_scalar_ops_do_not_vectorise(self):
        vector = HOST_CPU.time_for(flops=1e9)
        scalar = HOST_CPU.time_for(scalar_ops=1e9)
        assert scalar > vector * 10

    def test_single_core_slower_than_parallel(self):
        assert (HOST_CPU.time_single_core(flops=1e9)
                > HOST_CPU.time_for(flops=1e9))

    def test_zero_work_is_zero_time(self):
        assert HOST_CPU.time_for() == 0.0

    def test_custom_spec_scales(self):
        half = CPUSpec(cores=6)
        assert half.time_for(flops=1e9) == pytest.approx(
            2 * HOST_CPU.time_for(flops=1e9))
