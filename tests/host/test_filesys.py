"""Tests for the host file-descriptor layer."""

import numpy as np
import pytest

from repro.host.filesys import (
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    HostFileSystem,
)
from repro.host.ramfs import FileSystemError, RamFS


@pytest.fixture
def hfs():
    fs = RamFS()
    fs.create("data", np.arange(100, dtype=np.uint8))
    return HostFileSystem(fs)


class TestHostFileSystem:
    def test_open_returns_increasing_fds(self, hfs):
        a = hfs.open("data")
        b = hfs.open("data")
        assert b.fd > a.fd >= 3

    def test_open_missing_raises(self, hfs):
        with pytest.raises(FileSystemError):
            hfs.open("missing")

    def test_open_creat_creates(self, hfs):
        h = hfs.open("new", O_RDWR | O_CREAT)
        assert h.size() == 0

    def test_by_fd_roundtrip(self, hfs):
        h = hfs.open("data")
        assert hfs.by_fd(h.fd) is h

    def test_by_fd_unknown_raises(self, hfs):
        with pytest.raises(FileSystemError):
            hfs.by_fd(1234)

    def test_close_removes_fd(self, hfs):
        h = hfs.open("data")
        hfs.close(h.fd)
        assert h.fd not in hfs.open_fds
        with pytest.raises(FileSystemError):
            hfs.by_fd(h.fd)


class TestFileHandle:
    def test_pread(self, hfs):
        h = hfs.open("data")
        assert list(h.pread(10, 3)) == [10, 11, 12]

    def test_pwrite_readonly_raises(self, hfs):
        h = hfs.open("data", O_RDONLY)
        with pytest.raises(FileSystemError):
            h.pwrite(0, np.zeros(4, dtype=np.uint8))

    def test_pwrite_rdwr(self, hfs):
        h = hfs.open("data", O_RDWR)
        h.pwrite(0, np.array([42], dtype=np.uint8))
        assert h.pread(0, 1)[0] == 42

    def test_closed_handle_raises(self, hfs):
        h = hfs.open("data")
        h.close()
        with pytest.raises(FileSystemError):
            h.pread(0, 1)

    def test_size(self, hfs):
        assert hfs.open("data").size() == 100
