"""Tests for the in-memory host file system."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.host.ramfs import FileSystemError, RamFS


@pytest.fixture
def fs():
    return RamFS()


class TestRamFS:
    def test_create_and_open(self, fs):
        fs.create("a", np.arange(10, dtype=np.uint8))
        assert fs.open("a").size == 10

    def test_create_duplicate_raises(self, fs):
        fs.create("a")
        with pytest.raises(FileSystemError):
            fs.create("a")

    def test_open_missing_raises(self, fs):
        with pytest.raises(FileSystemError):
            fs.open("nope")

    def test_unlink(self, fs):
        fs.create("a")
        fs.unlink("a")
        assert not fs.exists("a")

    def test_unlink_missing_raises(self, fs):
        with pytest.raises(FileSystemError):
            fs.unlink("nope")

    def test_listdir_sorted(self, fs):
        fs.create("b")
        fs.create("a")
        assert fs.listdir() == ["a", "b"]

    def test_total_bytes(self, fs):
        fs.create("a", np.zeros(100, dtype=np.uint8))
        fs.create("b", np.zeros(24, dtype=np.uint8))
        assert fs.total_bytes == 124


class TestRamFile:
    def test_pread_returns_copy(self, fs):
        f = fs.create("a", np.arange(10, dtype=np.uint8))
        out = f.pread(0, 10)
        out[0] = 99
        assert f.data[0] == 0

    def test_pread_short_read_at_eof(self, fs):
        f = fs.create("a", np.arange(10, dtype=np.uint8))
        assert f.pread(8, 10).size == 2

    def test_pread_past_eof_empty(self, fs):
        f = fs.create("a", np.arange(10, dtype=np.uint8))
        assert f.pread(100, 4).size == 0

    def test_pread_negative_offset_raises(self, fs):
        f = fs.create("a")
        with pytest.raises(FileSystemError):
            f.pread(-1, 4)

    def test_pwrite_grows_file(self, fs):
        f = fs.create("a")
        n = f.pwrite(100, np.arange(10, dtype=np.uint8))
        assert n == 10
        assert f.size == 110
        assert np.all(f.data[:100] == 0)

    def test_pwrite_overwrites_in_place(self, fs):
        f = fs.create("a", np.zeros(10, dtype=np.uint8))
        f.pwrite(2, np.array([7, 8], dtype=np.uint8))
        assert list(f.data[:5]) == [0, 0, 7, 8, 0]

    def test_truncate_shrink_and_grow(self, fs):
        f = fs.create("a", np.arange(10, dtype=np.uint8))
        f.truncate(4)
        assert f.size == 4
        f.truncate(8)
        assert f.size == 8
        assert np.all(f.data[4:] == 0)

    @given(st.integers(0, 500), st.binary(min_size=0, max_size=200))
    def test_pwrite_pread_roundtrip(self, offset, payload):
        fs = RamFS()
        f = fs.create("x")
        data = np.frombuffer(payload, dtype=np.uint8)
        f.pwrite(offset, data)
        back = f.pread(offset, len(payload))
        assert np.array_equal(back, data)
