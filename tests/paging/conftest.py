"""Shared fixtures for paging-layer tests."""

import numpy as np
import pytest

from repro.gpu import Device
from repro.host import HostFileSystem
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig

PAGE = 4096
FILE_PAGES = 64


@pytest.fixture
def file_bytes():
    rng = np.random.RandomState(42)
    return rng.randint(0, 256, FILE_PAGES * PAGE, dtype=np.uint8)


@pytest.fixture
def device():
    return Device(memory_bytes=64 * 1024 * 1024)


@pytest.fixture
def gpufs(device, file_bytes):
    fs = RamFS()
    fs.create("data", file_bytes)
    return GPUfs(device, HostFileSystem(fs),
                 GPUfsConfig(page_size=PAGE, num_frames=16))


def run_warp(device, gen_fn, *args, grid=1, block_threads=32):
    """Launch a kernel and return its LaunchResult."""
    return device.launch(gen_fn, grid=grid, block_threads=block_threads,
                         args=args)
