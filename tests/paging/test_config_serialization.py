"""GPUfsConfig keyword-only API: dict round-trip and the positional
deprecation window."""

import warnings

import pytest

from repro.paging.gpufs import GPUfsConfig


class TestDictRoundTrip:
    def test_round_trip_preserves_every_field(self):
        cfg = GPUfsConfig(num_frames=64, batching=False,
                          eviction_policy="lru", readahead=True,
                          readahead_window=8)
        assert GPUfsConfig.from_dict(cfg.to_dict()) == cfg

    def test_to_dict_is_plain_json_types(self):
        import json
        json.dumps(GPUfsConfig().to_dict())

    def test_unknown_keys_fail_loudly(self):
        with pytest.raises(ValueError, match="readahed_window"):
            GPUfsConfig.from_dict({"readahed_window": 8})

    def test_partial_dict_fills_defaults(self):
        cfg = GPUfsConfig.from_dict({"num_frames": 3})
        assert cfg.num_frames == 3
        assert cfg.page_size == GPUfsConfig().page_size


class TestPositionalRemoval:
    def test_keyword_construction_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            GPUfsConfig(page_size=4096, num_frames=8)

    def test_positional_construction_raises(self):
        with pytest.raises(TypeError, match="positional"):
            GPUfsConfig(4096, 8)

    def test_mixed_positional_and_keyword_raises(self):
        with pytest.raises(TypeError, match="keyword"):
            GPUfsConfig(4096, batching=False)

    def test_frozen_semantics_survive_the_wrapper(self):
        cfg = GPUfsConfig(num_frames=8)
        with pytest.raises(Exception):
            cfg.num_frames = 9
        assert hash(cfg) == hash(GPUfsConfig(num_frames=8))
