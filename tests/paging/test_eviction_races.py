"""Regression tests for eviction/fault races the simulator uncovered.

Two real concurrency bugs were found and fixed during development; these
tests pin the fixes:

1. **Key-reuse eviction** — an evictor that captured a victim entry,
   then lost the race (victim removed, a *fresh in-flight entry*
   inserted under the same key), must not remove the fresh entry.
   ``remove_if_unreferenced`` therefore verifies entry *identity*,
   readiness, and refcount under the bucket lock.
2. **Resurrection** — a fault handler re-referencing a page between the
   eviction scan and removal detects the ``removed`` flag after its
   atomic and retries from scratch.
"""

import numpy as np
import pytest

from repro.gpu import Device
from repro.paging.page_table import PageTable, PageTableEntry


@pytest.fixture
def device():
    return Device(memory_bytes=16 * 1024 * 1024)


def drive(device, gen_fn, *args):
    out = []

    def kern(ctx):
        out.append((yield from gen_fn(ctx, *args)))

    device.launch(kern, grid=1, block_threads=32)
    return out[0]


class TestRemoveIfUnreferenced:
    def test_removes_matching_idle_entry(self, device):
        t = PageTable(device, nframes=8)
        e = PageTableEntry(1, 0, frame=0)
        drive(device, t.insert, e)
        assert drive(device, t.remove_if_unreferenced, e)
        assert e.removed
        assert t.get(1, 0) is None

    def test_refuses_referenced_entry(self, device):
        t = PageTable(device, nframes=8)
        e = PageTableEntry(1, 0, frame=0, refcount=3)
        drive(device, t.insert, e)
        assert not drive(device, t.remove_if_unreferenced, e)
        assert not e.removed
        assert t.get(1, 0) is e

    def test_refuses_busy_entry(self, device):
        t = PageTable(device, nframes=8)
        e = PageTableEntry(1, 0, frame=0, ready=False)
        drive(device, t.insert, e)
        assert not drive(device, t.remove_if_unreferenced, e)

    def test_refuses_stale_victim_after_key_reuse(self, device):
        """The key-reuse regression: a fresh entry under the same key
        must survive an eviction armed with the old entry."""
        t = PageTable(device, nframes=8)
        old = PageTableEntry(1, 0, frame=0)
        drive(device, t.insert, old)
        drive(device, t.remove_if_unreferenced, old)
        fresh = PageTableEntry(1, 0, frame=3, ready=False)
        drive(device, t.insert, fresh)
        # A stale evictor still holding `old` must not touch `fresh`.
        assert not drive(device, t.remove_if_unreferenced, old)
        assert t.get(1, 0) is fresh
        assert not fresh.removed

    def test_refuses_already_removed_entry(self, device):
        t = PageTable(device, nframes=8)
        e = PageTableEntry(1, 0, frame=0)
        drive(device, t.insert, e)
        assert drive(device, t.remove_if_unreferenced, e)
        assert not drive(device, t.remove_if_unreferenced, e)


class TestEvictionStress:
    @pytest.mark.parametrize("policy", ["clock", "fifo", "lru", "random"])
    def test_heavy_churn_never_loses_pins(self, policy):
        """Many warps cycling pin/unpin over a tiny cache: every gmmap
        must be releasable, whatever the eviction policy."""
        from repro.host import HostFileSystem
        from repro.host.ramfs import RamFS
        from repro.paging import GPUfs, GPUfsConfig

        npages = 48
        fs = RamFS()
        fs.create("f", np.zeros(npages * 4096, np.uint8))
        device = Device(memory_bytes=32 * 1024 * 1024)
        gpufs = GPUfs(device, HostFileSystem(fs),
                      GPUfsConfig(num_frames=npages // 3,
                                  eviction_policy=policy))
        fid = gpufs.open("f")
        nwarps = 16

        def kern(ctx):
            for r in range(2):
                for p in range(ctx.warp_id, npages, nwarps):
                    yield from gpufs.gmmap(ctx, fid, p * 4096)
                    yield from gpufs.gmunmap(ctx, fid, p * 4096)

        device.launch(kern, grid=1, block_threads=nwarps * 32)
        assert gpufs.cache.evictions > 0
        for entry in gpufs.cache.table.entries():
            assert entry.refcount == 0
