"""Tests for the gread/gwrite warp-level file API."""

import numpy as np
import pytest

from repro.gpu import Device
from repro.host import HostFileSystem, O_RDWR
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig
from repro.paging.fileapi import gopen

PAGE = 4096


@pytest.fixture
def env():
    rng = np.random.RandomState(8)
    data = rng.randint(0, 256, 16 * PAGE, np.uint8)
    fs = RamFS()
    fs.create("f", data)
    device = Device(memory_bytes=32 * 1024 * 1024)
    gpufs = GPUfs(device, HostFileSystem(fs),
                  GPUfsConfig(page_size=PAGE, num_frames=8))
    gfile = gopen(gpufs, "f", O_RDWR)
    return device, gpufs, gfile, data


def run(device, body):
    def kern(ctx):
        yield from body(ctx)

    return device.launch(kern, grid=1, block_threads=32)


class TestGread:
    def test_reads_exact_bytes(self, env):
        device, gpufs, gfile, data = env
        dst = device.alloc(512)

        def body(ctx):
            n = yield from gfile.gread(ctx, 100, 512, dst)
            assert n == 512

        run(device, body)
        got = device.memory.read(dst, 512)
        assert np.array_equal(got, data[100:612])

    def test_read_spanning_pages(self, env):
        device, gpufs, gfile, data = env
        dst = device.alloc(2 * PAGE)

        def body(ctx):
            yield from gfile.gread(ctx, PAGE - 256, 2 * PAGE, dst)

        run(device, body)
        got = device.memory.read(dst, 2 * PAGE)
        assert np.array_equal(got, data[PAGE - 256:3 * PAGE - 256])

    def test_pages_unpinned_after_read(self, env):
        device, gpufs, gfile, data = env
        dst = device.alloc(PAGE)

        def body(ctx):
            yield from gfile.gread(ctx, 0, PAGE, dst)

        run(device, body)
        for entry in gpufs.cache.table.entries():
            assert entry.refcount == 0

    def test_zero_size_rejected(self, env):
        device, gpufs, gfile, _ = env

        def body(ctx):
            yield from gfile.gread(ctx, 0, 0, 0)

        with pytest.raises(ValueError):
            run(device, body)

    def test_unaligned_sizes(self, env):
        device, gpufs, gfile, data = env
        dst = device.alloc(1000)

        def body(ctx):
            yield from gfile.gread(ctx, 7, 999, dst)

        run(device, body)
        got = device.memory.read(dst, 999)
        assert np.array_equal(got, data[7:1006])


class TestGwrite:
    def test_write_roundtrips_through_cache(self, env):
        device, gpufs, gfile, _ = env
        src = device.alloc(PAGE)
        device.memory.write(src, np.full(PAGE, 0x3C, np.uint8))

        def body(ctx):
            yield from gfile.gwrite(ctx, 2 * PAGE + 128, PAGE, src)
            yield from gpufs.flush(ctx)

        run(device, body)
        back = gpufs.host_fs.ramfs.open("f").pread(2 * PAGE + 128, PAGE)
        assert np.all(back == 0x3C)

    def test_write_marks_pages_dirty(self, env):
        device, gpufs, gfile, _ = env
        src = device.alloc(256)

        def body(ctx):
            yield from gfile.gwrite(ctx, 0, 256, src)

        run(device, body)
        assert gpufs.cache.table.get(gfile.file_id, 0).dirty

    def test_read_back_own_write(self, env):
        device, gpufs, gfile, _ = env
        src = device.alloc(512)
        dst = device.alloc(512)
        device.memory.write(src, np.arange(512, dtype=np.uint8) % 251)

        def body(ctx):
            yield from gfile.gwrite(ctx, 5 * PAGE, 512, src)
            yield from gfile.gread(ctx, 5 * PAGE, 512, dst)

        run(device, body)
        assert np.array_equal(device.memory.read(dst, 512),
                              np.arange(512, dtype=np.uint8) % 251)

    def test_counters(self, env):
        device, gpufs, gfile, _ = env
        src = device.alloc(64)

        def body(ctx):
            yield from gfile.gwrite(ctx, 0, 64, src)
            yield from gfile.gread(ctx, 0, 64, src)

        run(device, body)
        assert gfile.reads == 1 and gfile.writes == 1
