"""Integration tests for the GPUfs layer: faults, gmmap, batching,
writeback, and fault filters."""

import numpy as np
import pytest

from repro.gpu import Device
from repro.host import HostFileSystem, O_RDWR
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig
from repro.paging.gpufs import FaultFilter, PROT_READ, PROT_WRITE

PAGE = 4096


def make_gpufs(file_bytes, num_frames=16, batching=True, fault_filter=None):
    fs = RamFS()
    fs.create("data", file_bytes)
    device = Device(memory_bytes=64 * 1024 * 1024)
    gfs = GPUfs(device, HostFileSystem(fs),
                GPUfsConfig(page_size=PAGE, num_frames=num_frames,
                            batching=batching),
                fault_filter=fault_filter)
    return device, gfs


@pytest.fixture
def file_bytes():
    return np.random.RandomState(7).randint(
        0, 256, 64 * PAGE, dtype=np.uint8)


class TestFaults:
    def test_first_access_is_major_second_is_minor(self, file_bytes):
        device, gfs = make_gpufs(file_bytes)
        fid = gfs.open("data")

        def kern(ctx, fid):
            addr = yield from gfs.gmmap(ctx, fid, 0)
            yield from gfs.gmunmap(ctx, fid, 0)
            addr = yield from gfs.gmmap(ctx, fid, 0)
            yield from gfs.gmunmap(ctx, fid, 0)

        device.launch(kern, grid=1, block_threads=32, args=(fid,))
        assert gfs.stats.major_faults == 1
        assert gfs.stats.minor_faults == 1

    def test_fault_returns_correct_data(self, file_bytes):
        device, gfs = make_gpufs(file_bytes)
        fid = gfs.open("data")
        seen = []

        def kern(ctx, fid):
            addr = yield from gfs.gmmap(ctx, fid, 5 * PAGE)
            vals = yield from ctx.load(addr + ctx.lane * 4, "u4")
            seen.append(vals.copy())

        device.launch(kern, grid=1, block_threads=32, args=(fid,))
        expected = file_bytes[5 * PAGE:5 * PAGE + 128].view(np.uint32)
        assert np.array_equal(seen[0], expected)

    def test_intra_page_offset_respected(self, file_bytes):
        device, gfs = make_gpufs(file_bytes)
        fid = gfs.open("data")
        seen = []

        def kern(ctx, fid):
            addr = yield from gfs.gmmap(ctx, fid, 3 * PAGE + 100)
            vals = yield from ctx.load(addr + ctx.lane * 4, "u4")
            seen.append(vals.copy())

        device.launch(kern, grid=1, block_threads=32, args=(fid,))
        expected = file_bytes[3 * PAGE + 100:
                              3 * PAGE + 100 + 128].view(np.uint32)
        assert np.array_equal(seen[0], expected)

    def test_concurrent_faults_on_same_page_one_transfer(self, file_bytes):
        """Many warps faulting on one page must cause one host transfer."""
        device, gfs = make_gpufs(file_bytes)
        fid = gfs.open("data")

        def kern(ctx, fid):
            yield from gfs.gmmap(ctx, fid, 0)

        device.launch(kern, grid=4, block_threads=256, args=(fid,))
        assert gfs.stats.major_faults == 1
        assert gfs.batcher.stats.transfers == 1
        entry = gfs.cache.table.get(fid, 0)
        assert entry.refcount == 32  # one gmmap per warp

    def test_refcounts_balance_after_unmap(self, file_bytes):
        device, gfs = make_gpufs(file_bytes)
        fid = gfs.open("data")

        def kern(ctx, fid):
            for p in range(4):
                yield from gfs.gmmap(ctx, fid, p * PAGE)
                yield from gfs.gmunmap(ctx, fid, p * PAGE)

        device.launch(kern, grid=2, block_threads=256, args=(fid,))
        for entry in gfs.cache.table.entries():
            assert entry.refcount == 0

    def test_release_nonresident_page_raises(self, file_bytes):
        device, gfs = make_gpufs(file_bytes)
        fid = gfs.open("data")

        def kern(ctx, fid):
            yield from gfs.release_page(ctx, fid, 0)

        with pytest.raises(RuntimeError, match="non-resident"):
            device.launch(kern, grid=1, block_threads=32, args=(fid,))


class TestEvictionAndWriteback:
    def test_working_set_larger_than_cache(self, file_bytes):
        """All 64 pages through a 16-frame cache: evictions, correct data."""
        device, gfs = make_gpufs(file_bytes, num_frames=16)
        fid = gfs.open("data")
        ok = []

        def kern(ctx, fid):
            for p in range(ctx.warp_id, 64, 8):
                addr = yield from gfs.gmmap(ctx, fid, p * PAGE)
                vals = yield from ctx.load(addr + ctx.lane * 4, "u4")
                exp = file_bytes[p * PAGE:p * PAGE + 128].view(np.uint32)
                ok.append(np.array_equal(vals, exp))
                yield from gfs.gmunmap(ctx, fid, p * PAGE)

        device.launch(kern, grid=1, block_threads=256, args=(fid,))
        assert all(ok) and len(ok) == 64
        assert gfs.cache.evictions >= 48

    def test_dirty_pages_written_back_on_eviction(self, file_bytes):
        device, gfs = make_gpufs(file_bytes, num_frames=4)
        fid = gfs.open("data", O_RDWR)

        def kern(ctx, fid):
            addr = yield from gfs.gmmap(ctx, fid, 0, prot=PROT_READ | PROT_WRITE)
            yield from ctx.store(addr + ctx.lane * 4,
                                 np.full(32, 0xAB, np.uint32), "u4")
            yield from gfs.gmunmap(ctx, fid, 0)
            for p in range(1, 6):  # force page 0 out
                yield from gfs.gmmap(ctx, fid, p * PAGE)
                yield from gfs.gmunmap(ctx, fid, p * PAGE)

        device.launch(kern, grid=1, block_threads=32, args=(fid,))
        back = gfs.host_fs.ramfs.open("data").pread(0, 128).view(np.uint32)
        assert np.all(back == 0xAB)
        assert gfs.cache.writebacks >= 1

    def test_flush_writes_dirty_pages(self, file_bytes):
        device, gfs = make_gpufs(file_bytes)
        fid = gfs.open("data", O_RDWR)

        def kern(ctx, fid):
            addr = yield from gfs.gmmap(ctx, fid, PAGE, prot=PROT_READ | PROT_WRITE)
            yield from ctx.store(addr + ctx.lane * 4,
                                 np.full(32, 0xCD, np.uint32), "u4")
            yield from gfs.gmunmap(ctx, fid, PAGE)
            yield from gfs.flush(ctx)

        device.launch(kern, grid=1, block_threads=32, args=(fid,))
        back = gfs.host_fs.ramfs.open("data").pread(PAGE, 128).view(np.uint32)
        assert np.all(back == 0xCD)


class TestBatching:
    def test_batching_reduces_transactions_and_time(self, file_bytes):
        results = {}
        for batching in (True, False):
            device, gfs = make_gpufs(file_bytes, num_frames=64,
                                     batching=batching)
            fid = gfs.open("data")

            def kern(ctx, fid):
                for p in range(ctx.warp_id, 64, 16):
                    yield from gfs.gmmap(ctx, fid, p * PAGE)
                    yield from gfs.gmunmap(ctx, fid, p * PAGE)

            res = device.launch(kern, grid=2, block_threads=256, args=(fid,))
            results[batching] = (res.cycles, gfs.batcher.stats.batches)
        cycles_on, batches_on = results[True]
        cycles_off, batches_off = results[False]
        assert batches_on < batches_off
        assert cycles_on < cycles_off * 0.7

    def test_batch_size_capped(self, file_bytes):
        device, gfs = make_gpufs(file_bytes, num_frames=64)
        gfs.batcher.max_batch = 4
        fid = gfs.open("data")

        def kern(ctx, fid):
            p = ctx.warp_id
            yield from gfs.gmmap(ctx, fid, p * PAGE)

        device.launch(kern, grid=2, block_threads=256, args=(fid,))
        assert gfs.batcher.stats.batches >= 4


class TestFaultFilter:
    def test_xor_filter_roundtrip(self, file_bytes):
        """A CryptFS-style page filter decrypts on page-in and encrypts
        on page-out, transparently to the accessing kernel."""

        class XorFilter(FaultFilter):
            instructions_per_byte = 0.5

            def page_in(self, data, fpn):
                return data ^ np.uint8(0x5A)

            def page_out(self, data, fpn):
                return data ^ np.uint8(0x5A)

        encrypted = file_bytes ^ np.uint8(0x5A)
        device, gfs = make_gpufs(encrypted, fault_filter=XorFilter())
        fid = gfs.open("data", O_RDWR)
        seen = []

        def kern(ctx, fid):
            addr = yield from gfs.gmmap(ctx, fid, 0, prot=PROT_READ | PROT_WRITE)
            vals = yield from ctx.load(addr + ctx.lane * 4, "u4")
            seen.append(vals.copy())
            yield from ctx.store(addr + ctx.lane * 4, vals + 1, "u4")
            yield from gfs.gmunmap(ctx, fid, 0)
            yield from gfs.flush(ctx)

        device.launch(kern, grid=1, block_threads=32, args=(fid,))
        # The kernel saw plaintext.
        assert np.array_equal(seen[0], file_bytes[:128].view(np.uint32))
        # The host file still holds ciphertext (of the updated values).
        stored = gfs.host_fs.ramfs.open("data").pread(0, 128)
        decrypted = (stored ^ np.uint8(0x5A)).view(np.uint32)
        assert np.array_equal(decrypted, seen[0] + 1)
