"""Tests for the page cache: pinning, eviction, writeback."""

import pytest

from repro.gpu import Device
from repro.paging.page_cache import (
    PageCache,
    PageCacheConfig,
    PageCacheFullError,
)
from repro.paging.page_table import PageTableEntry


@pytest.fixture
def device():
    return Device(memory_bytes=32 * 1024 * 1024)


@pytest.fixture
def cache(device):
    return PageCache(device, PageCacheConfig(page_size=4096, num_frames=4))


def drive(device, gen_fn, *args, **kwargs):
    out = []

    def kern(ctx):
        out.append((yield from gen_fn(ctx, *args, **kwargs)))

    device.launch(kern, grid=1, block_threads=32)
    return out[0]


def _no_writeback(ctx, entry, frame_addr):
    return
    yield  # pragma: no cover


class TestConfig:
    def test_page_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            PageCacheConfig(page_size=3000)

    def test_frames_must_be_positive(self):
        with pytest.raises(ValueError):
            PageCacheConfig(num_frames=0)


class TestFrames:
    def test_frame_addresses_are_page_strided(self, cache):
        assert cache.frame_addr(1) - cache.frame_addr(0) == 4096

    def test_bad_frame_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.frame_addr(4)

    def test_allocate_uses_free_frames_first(self, device, cache):
        frames = [drive(device, cache.allocate_frame, _no_writeback)
                  for _ in range(4)]
        assert sorted(frames) == [0, 1, 2, 3]
        assert cache.evictions == 0


class TestEviction:
    def test_evicts_unreferenced_page(self, device, cache):
        for i in range(4):
            frame = drive(device, cache.allocate_frame, _no_writeback)
            entry = PageTableEntry(1, i, frame=frame)
            cache.bind(entry)
            drive(device, cache.table.insert, entry)
        frame = drive(device, cache.allocate_frame, _no_writeback)
        assert cache.evictions == 1
        assert frame in range(4)

    def test_active_pages_are_never_evicted(self, device, cache):
        """The paper's core invariant: refcount > 0 pins the mapping."""
        entries = []
        for i in range(4):
            frame = drive(device, cache.allocate_frame, _no_writeback)
            entry = PageTableEntry(1, i, frame=frame, refcount=1)
            cache.bind(entry)
            drive(device, cache.table.insert, entry)
            entries.append(entry)
        with pytest.raises(PageCacheFullError):
            drive(device, cache.allocate_frame, _no_writeback)
        # Releasing one page makes exactly that page evictable.
        entries[2].refcount = 0
        frame = drive(device, cache.allocate_frame, _no_writeback)
        assert frame == entries[2].frame
        assert cache.table.get(1, 2) is None

    def test_dirty_victim_triggers_writeback(self, device, cache):
        written = []

        def writeback(ctx, entry, frame_addr):
            written.append(entry.key)
            return
            yield  # pragma: no cover

        frame = drive(device, cache.allocate_frame, writeback)
        entry = PageTableEntry(1, 0, frame=frame, dirty=True)
        cache.bind(entry)
        drive(device, cache.table.insert, entry)
        for _ in range(4):
            drive(device, cache.allocate_frame, writeback)
        assert written == [(1, 0)]
        assert cache.writebacks == 1

    def test_release_frame_returns_to_free_list(self, device, cache):
        frame = drive(device, cache.allocate_frame, _no_writeback)
        cache.release_frame(frame)
        assert drive(device, cache.allocate_frame, _no_writeback) == frame

    def test_pinned_frames_counter(self, device, cache):
        frame = drive(device, cache.allocate_frame, _no_writeback)
        entry = PageTableEntry(1, 0, frame=frame, refcount=3)
        cache.bind(entry)
        assert cache.pinned_frames() == 1
        entry.refcount = 0
        assert cache.pinned_frames() == 0
