"""Tests for the concurrent page-table hash table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import Device
from repro.paging.page_table import PageTable, PageTableEntry


@pytest.fixture
def device():
    return Device(memory_bytes=32 * 1024 * 1024)


@pytest.fixture
def table(device):
    return PageTable(device, nframes=32)


def drive(device, gen_fn, *args):
    """Run a single-warp kernel around a table operation; returns results."""
    out = []

    def kern(ctx):
        result = yield from gen_fn(ctx, *args)
        out.append(result)

    device.launch(kern, grid=1, block_threads=32)
    return out[0]


class TestGeometry:
    def test_sixteen_slots_per_frame(self, table):
        assert table.nslots == 32 * 16

    def test_memory_overhead_below_five_percent(self, device):
        """§V: table memory overhead is <5% of the page cache size."""
        nframes = 512
        t = PageTable(device, nframes)
        table_bytes = t.nslots * 16
        cache_bytes = nframes * 4096
        assert table_bytes / cache_bytes < 0.07


class TestInsertLookup:
    def test_lookup_missing_returns_none(self, device, table):
        assert drive(device, table.lookup, 1, 0) is None

    def test_insert_then_lookup(self, device, table):
        entry = PageTableEntry(1, 7, frame=3)
        won = drive(device, table.insert, entry)
        assert won is entry
        found = drive(device, table.lookup, 1, 7)
        assert found is entry

    def test_duplicate_insert_returns_existing(self, device, table):
        first = PageTableEntry(1, 7, frame=3)
        second = PageTableEntry(1, 7, frame=9)
        drive(device, table.insert, first)
        won = drive(device, table.insert, second)
        assert won is first

    def test_different_files_do_not_collide_logically(self, device, table):
        a = PageTableEntry(1, 0, frame=0)
        b = PageTableEntry(2, 0, frame=1)
        drive(device, table.insert, a)
        drive(device, table.insert, b)
        assert drive(device, table.lookup, 1, 0) is a
        assert drive(device, table.lookup, 2, 0) is b

    def test_remove_then_lookup_misses(self, device, table):
        drive(device, table.insert, PageTableEntry(1, 7, frame=3))
        assert drive(device, table.remove, 1, 7)
        assert drive(device, table.lookup, 1, 7) is None

    def test_remove_missing_returns_false(self, device, table):
        assert not drive(device, table.remove, 9, 9)

    def test_remove_repairs_probe_chain(self, device, table):
        """Entries displaced by linear probing stay findable after a
        removal earlier in their chain."""
        entries = [PageTableEntry(5, fpn, frame=fpn) for fpn in range(20)]
        for e in entries:
            drive(device, table.insert, e)
        drive(device, table.remove, 5, 0)
        for e in entries[1:]:
            assert drive(device, table.lookup, 5, e.fpn) is e

    def test_table_full_raises(self, device):
        small = PageTable(device, nframes=1)  # 16 slots
        for i in range(16):
            drive(device, small.insert, PageTableEntry(1, i, frame=i))
        with pytest.raises(RuntimeError, match="full"):
            drive(device, small.insert, PageTableEntry(1, 99, frame=99))


class TestRefcounts:
    def test_add_refs_accumulates(self, device, table):
        e = PageTableEntry(1, 0, frame=0)
        drive(device, table.insert, e)
        drive(device, table.add_refs, e, 32)
        drive(device, table.add_refs, e, 5)
        assert e.refcount == 37

    def test_negative_refcount_raises(self, device, table):
        e = PageTableEntry(1, 0, frame=0)
        drive(device, table.insert, e)
        with pytest.raises(RuntimeError, match="negative"):
            drive(device, table.add_refs, e, -1)


class TestCollisionRate:
    def test_low_collision_rate_at_full_cache(self, device):
        """§V: 16x sizing yields a ~3% collision rate when the cache is
        full (one resident entry per frame)."""
        nframes = 256
        t = PageTable(device, nframes)
        for i in range(nframes):
            drive(device, t.insert, PageTableEntry(1, i, frame=i))
        t.lookups = t.probes = 0
        for i in range(nframes):
            drive(device, t.lookup, 1, i)
        assert t.collision_rate() < 0.10

    @given(keys=st.sets(st.tuples(st.integers(0, 5), st.integers(0, 1000)),
                        min_size=1, max_size=60))
    @settings(max_examples=20, deadline=None)
    def test_insert_lookup_consistency(self, keys):
        device = Device(memory_bytes=8 * 1024 * 1024)
        t = PageTable(device, nframes=64)
        entries = {}
        for frame, (fid, fpn) in enumerate(sorted(keys)):
            e = PageTableEntry(fid, fpn, frame=frame)
            entries[(fid, fpn)] = e
            drive(device, t.insert, e)
        for (fid, fpn), e in entries.items():
            assert t.get(fid, fpn) is e
        assert t.get(99, 99) is None


class TestHostInsertLockDiscipline:
    """The host readahead daemon must not race a warp's bucket-locked
    insert (REVIEW: duplicate live entries for one key)."""

    def test_host_insert_defers_while_bucket_lock_held(self, device, table):
        e = PageTableEntry(1, 7, frame=0, ready=False, speculative=True)
        lock = table._lock_for(table._hash(1, 7))
        lock.holder = object()          # a warp is mid-insert here
        assert table.host_insert(e) is None
        assert table.get(1, 7) is None
        lock.holder = None
        assert table.host_insert(e) is e
        assert table.get(1, 7) is e

    def test_host_insert_returns_existing_entry(self, device, table):
        first = PageTableEntry(1, 7, frame=0)
        assert table.host_insert(first) is first
        dup = PageTableEntry(1, 7, frame=1)
        assert table.host_insert(dup) is first
        assert table.get(1, 7) is first

    def test_insert_rescans_when_daemon_takes_free_slot(self, device, table):
        """A host_insert of a *different* key (different bucket lock,
        overlapping probe chain) landing in the slot a mid-flight
        insert() picked must not be clobbered: the warp re-validates
        before publishing and probes on."""
        # Pin the hash so the warp's key homes at slot 64 and the
        # daemon's key at slot 56 — different lock groups (8 slots per
        # lock), but the daemon's chain walks 56..63 (pre-filled) and
        # reaches 64.
        mapping = {(1, 3): 64, (2, 9): 56}
        mapping.update({(3, i): 56 + i for i in range(8)})
        orig = PageTable._hash
        table._hash = lambda fid, fpn: mapping.get(
            (fid, fpn), orig(table, fid, fpn))
        for i in range(8):
            table.host_insert(PageTableEntry(3, i, frame=10 + i))
        # A tombstone at 64: the warp picks it as free_slot, then keeps
        # probing (yielding) past the occupied 65 — the daemon's window.
        doomed = PageTableEntry(1, 3, frame=2)
        table.host_insert(doomed)
        assert table.host_remove(doomed)
        blocker = PageTableEntry(4, 0, frame=3)
        mapping[(4, 0)] = 65
        table.host_insert(blocker)

        warp_entry = PageTableEntry(1, 3, frame=0)
        daemon_entry = PageTableEntry(2, 9, frame=1, ready=False,
                                      speculative=True)
        p0 = table.probes
        fired = []

        def kern(ctx):
            gen = table.insert(ctx, warp_entry)
            try:
                step = gen.send(None)
                while True:
                    # Fire once the warp has chosen the tombstone at 64
                    # and is mid-probe on slot 65.
                    if not fired and table.probes >= p0 + 2:
                        fired.append(table.host_insert(daemon_entry))
                    step = gen.send((yield step))
            except StopIteration:
                pass

        device.launch(kern, grid=1, block_threads=32)
        assert fired and fired[0] is daemon_entry
        assert table._slots[64] is daemon_entry
        assert table.get(2, 9) is daemon_entry
        assert table.get(1, 3) is warp_entry
        live = [s for s in table._slots if isinstance(s, PageTableEntry)]
        assert live.count(daemon_entry) == 1
        assert live.count(warp_entry) == 1


class TestHostRemoveLockDiscipline:
    """host_remove must defer — never drop a write — when a warp holds
    the bucket lock or the page is dirty (the write-back analogue of
    the host_insert defer above)."""

    def test_host_remove_defers_while_bucket_lock_held(self, device,
                                                       table):
        e = PageTableEntry(1, 7, frame=0, ready=True, speculative=True)
        assert table.host_insert(e) is e
        lock = table._lock_for(table._hash(1, 7))
        lock.holder = object()          # a warp is mid-fault here
        assert not table.host_remove(e)
        assert table.deferred_removes == 1
        assert table.get(1, 7) is e     # still resident, not removed
        assert not e.removed
        lock.holder = None
        assert table.host_remove(e)
        assert table.get(1, 7) is None

    def test_host_remove_refuses_dirty_entry(self, device, table):
        e = PageTableEntry(1, 7, frame=0, ready=True, speculative=True)
        table.host_insert(e)
        e.dirty = True                  # a write landed on the page
        assert not table.host_remove(e)
        assert table.deferred_removes == 1
        assert table.get(1, 7) is e
        e.dirty = False                 # flushed by the timed path
        assert table.host_remove(e)

    def test_speculative_reclaim_skips_dirty_promoted_page(self, device):
        """allocate_speculative goes through host_remove, so a
        speculative page that was promoted and written can never be
        silently reclaimed by the readahead daemon."""
        from repro.paging.page_cache import PageCache, PageCacheConfig

        cache = PageCache(device, PageCacheConfig(page_size=4096,
                                                  num_frames=2))
        frames = [cache.allocate_speculative() for _ in range(2)]
        assert None not in frames
        entries = []
        for i, frame in enumerate(frames):
            e = PageTableEntry(1, i, frame=frame, ready=True,
                               speculative=True)
            cache.table.host_insert(e)
            cache.bind(e)
            cache.mark_speculative(frame)
            entries.append(e)
        entries[0].dirty = True         # written after a write fault
        got = cache.allocate_speculative()
        # Only the clean speculative frame is reclaimable.
        assert got == entries[1].frame
        assert cache.table.get(1, 0) is entries[0]
        assert cache.table.get(1, 1) is None
        assert cache.allocate_speculative() is None
        # Each refused reclaim attempt on the dirty page counts.
        assert cache.table.deferred_removes == 2
