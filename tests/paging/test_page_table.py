"""Tests for the concurrent page-table hash table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import Device
from repro.paging.page_table import PageTable, PageTableEntry


@pytest.fixture
def device():
    return Device(memory_bytes=32 * 1024 * 1024)


@pytest.fixture
def table(device):
    return PageTable(device, nframes=32)


def drive(device, gen_fn, *args):
    """Run a single-warp kernel around a table operation; returns results."""
    out = []

    def kern(ctx):
        result = yield from gen_fn(ctx, *args)
        out.append(result)

    device.launch(kern, grid=1, block_threads=32)
    return out[0]


class TestGeometry:
    def test_sixteen_slots_per_frame(self, table):
        assert table.nslots == 32 * 16

    def test_memory_overhead_below_five_percent(self, device):
        """§V: table memory overhead is <5% of the page cache size."""
        nframes = 512
        t = PageTable(device, nframes)
        table_bytes = t.nslots * 16
        cache_bytes = nframes * 4096
        assert table_bytes / cache_bytes < 0.07


class TestInsertLookup:
    def test_lookup_missing_returns_none(self, device, table):
        assert drive(device, table.lookup, 1, 0) is None

    def test_insert_then_lookup(self, device, table):
        entry = PageTableEntry(1, 7, frame=3)
        won = drive(device, table.insert, entry)
        assert won is entry
        found = drive(device, table.lookup, 1, 7)
        assert found is entry

    def test_duplicate_insert_returns_existing(self, device, table):
        first = PageTableEntry(1, 7, frame=3)
        second = PageTableEntry(1, 7, frame=9)
        drive(device, table.insert, first)
        won = drive(device, table.insert, second)
        assert won is first

    def test_different_files_do_not_collide_logically(self, device, table):
        a = PageTableEntry(1, 0, frame=0)
        b = PageTableEntry(2, 0, frame=1)
        drive(device, table.insert, a)
        drive(device, table.insert, b)
        assert drive(device, table.lookup, 1, 0) is a
        assert drive(device, table.lookup, 2, 0) is b

    def test_remove_then_lookup_misses(self, device, table):
        drive(device, table.insert, PageTableEntry(1, 7, frame=3))
        assert drive(device, table.remove, 1, 7)
        assert drive(device, table.lookup, 1, 7) is None

    def test_remove_missing_returns_false(self, device, table):
        assert not drive(device, table.remove, 9, 9)

    def test_remove_repairs_probe_chain(self, device, table):
        """Entries displaced by linear probing stay findable after a
        removal earlier in their chain."""
        entries = [PageTableEntry(5, fpn, frame=fpn) for fpn in range(20)]
        for e in entries:
            drive(device, table.insert, e)
        drive(device, table.remove, 5, 0)
        for e in entries[1:]:
            assert drive(device, table.lookup, 5, e.fpn) is e

    def test_table_full_raises(self, device):
        small = PageTable(device, nframes=1)  # 16 slots
        for i in range(16):
            drive(device, small.insert, PageTableEntry(1, i, frame=i))
        with pytest.raises(RuntimeError, match="full"):
            drive(device, small.insert, PageTableEntry(1, 99, frame=99))


class TestRefcounts:
    def test_add_refs_accumulates(self, device, table):
        e = PageTableEntry(1, 0, frame=0)
        drive(device, table.insert, e)
        drive(device, table.add_refs, e, 32)
        drive(device, table.add_refs, e, 5)
        assert e.refcount == 37

    def test_negative_refcount_raises(self, device, table):
        e = PageTableEntry(1, 0, frame=0)
        drive(device, table.insert, e)
        with pytest.raises(RuntimeError, match="negative"):
            drive(device, table.add_refs, e, -1)


class TestCollisionRate:
    def test_low_collision_rate_at_full_cache(self, device):
        """§V: 16x sizing yields a ~3% collision rate when the cache is
        full (one resident entry per frame)."""
        nframes = 256
        t = PageTable(device, nframes)
        for i in range(nframes):
            drive(device, t.insert, PageTableEntry(1, i, frame=i))
        t.lookups = t.probes = 0
        for i in range(nframes):
            drive(device, t.lookup, 1, i)
        assert t.collision_rate() < 0.10

    @given(keys=st.sets(st.tuples(st.integers(0, 5), st.integers(0, 1000)),
                        min_size=1, max_size=60))
    @settings(max_examples=20, deadline=None)
    def test_insert_lookup_consistency(self, keys):
        device = Device(memory_bytes=8 * 1024 * 1024)
        t = PageTable(device, nframes=64)
        entries = {}
        for frame, (fid, fpn) in enumerate(sorted(keys)):
            e = PageTableEntry(fid, fpn, frame=frame)
            entries[(fid, fpn)] = e
            drive(device, t.insert, e)
        for (fid, fpn), e in entries.items():
            assert t.get(fid, fpn) is e
        assert t.get(99, 99) is None
