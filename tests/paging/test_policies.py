"""Tests for eviction policies (unit) and their page-cache behaviour."""

import numpy as np
import pytest

from repro.gpu import Device
from repro.host import HostFileSystem
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig
from repro.paging.policies import (
    ClockPolicy,
    FifoPolicy,
    LruPolicy,
    POLICIES,
    RandomPolicy,
    make_policy,
)

PAGE = 4096


class TestFactory:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_make_all(self, name):
        assert make_policy(name, 8).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown eviction policy"):
            make_policy("belady", 8)


class TestClock:
    def test_sweeps_cyclically(self):
        p = ClockPolicy(4)
        assert list(p.candidates()) == [0, 1, 2, 3]
        p.on_bind(1)
        assert list(p.candidates()) == [2, 3, 0, 1]


class TestFifo:
    def test_oldest_binding_first(self):
        p = FifoPolicy(4)
        for f in (2, 0, 3, 1):
            p.on_bind(f)
        assert list(p.candidates())[:4] == [2, 0, 3, 1]

    def test_rebinding_refreshes_position(self):
        p = FifoPolicy(4)
        for f in (0, 1, 2):
            p.on_bind(f)
        p.on_bind(0)
        order = list(p.candidates())
        assert order.index(1) < order.index(0)

    def test_compaction_keeps_order(self):
        p = FifoPolicy(2)
        for _ in range(20):
            p.on_bind(0)
            p.on_bind(1)
        assert list(p.candidates())[:2] == [0, 1]


class TestLru:
    def test_least_recent_first(self):
        p = LruPolicy(3)
        for f in (0, 1, 2):
            p.on_bind(f)
        p.on_touch(0)
        order = list(p.candidates())
        assert order[0] == 1 and order[-1] == 0

    def test_release_resets(self):
        p = LruPolicy(2)
        p.on_bind(0)
        p.on_bind(1)
        p.on_release(0)
        assert list(p.candidates())[0] == 0


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(16, seed=3)
        b = RandomPolicy(16, seed=3)
        assert list(a.candidates()) == list(b.candidates())

    def test_covers_all_frames(self):
        p = RandomPolicy(8)
        assert sorted(p.candidates()) == list(range(8))


class TestPolicyInCache:
    def _run(self, policy_name, access_pattern, num_frames=4):
        fs = RamFS()
        data = np.random.RandomState(1).randint(0, 256, 32 * PAGE,
                                                np.uint8)
        fs.create("f", data)
        device = Device(memory_bytes=32 * 1024 * 1024)
        gpufs = GPUfs(device, HostFileSystem(fs),
                      GPUfsConfig(num_frames=num_frames,
                                  eviction_policy=policy_name))
        fid = gpufs.open("f")
        ok = []

        def kern(ctx):
            for p in access_pattern:
                addr = yield from gpufs.gmmap(ctx, fid, p * PAGE)
                vals = yield from ctx.load(addr + ctx.lane * 4, "u4")
                exp = data[p * PAGE:p * PAGE + 128].view(np.uint32)
                ok.append(np.array_equal(vals, exp))
                yield from gpufs.gmunmap(ctx, fid, p * PAGE)

        device.launch(kern, grid=1, block_threads=32)
        assert all(ok)
        return gpufs

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_all_policies_preserve_correctness(self, name):
        pattern = list(range(8)) * 2 + list(range(8, 16))
        gpufs = self._run(name, pattern)
        assert gpufs.cache.evictions > 0

    def test_lru_keeps_hot_page(self):
        """Alternate one hot page with a cold stream: LRU must refetch
        the hot page less often than FIFO."""
        pattern = []
        for cold in range(1, 25):
            pattern.extend([0, cold])
        majors = {}
        for name in ("lru", "fifo"):
            gpufs = self._run(name, pattern, num_frames=4)
            majors[name] = gpufs.stats.major_faults
        assert majors["lru"] < majors["fifo"]
