"""Tests for the transfer batcher and staging path."""

import numpy as np
import pytest

from repro.gpu import Device
from repro.host import HostFileSystem, O_RDWR
from repro.host.ramfs import RamFS
from repro.paging.staging import TransferBatcher

PAGE = 4096


@pytest.fixture
def env():
    device = Device(memory_bytes=32 * 1024 * 1024)
    fs = RamFS()
    data = np.random.RandomState(5).randint(0, 256, 16 * PAGE,
                                            dtype=np.uint8)
    fs.create("f", data)
    handle = HostFileSystem(fs).open("f", O_RDWR)
    return device, handle, data


class TestFetch:
    def test_fetch_lands_exact_bytes(self, env):
        device, handle, data = env
        batcher = TransferBatcher(device, PAGE)
        dst = device.alloc(PAGE)

        def kern(ctx):
            yield from batcher.fetch(ctx, handle, 3 * PAGE, PAGE, dst)

        device.launch(kern, grid=1, block_threads=32)
        got = device.memory.read(dst, PAGE)
        assert np.array_equal(got, data[3 * PAGE:4 * PAGE])

    def test_short_read_zero_padded(self, env):
        device, handle, data = env
        batcher = TransferBatcher(device, PAGE)
        dst = device.alloc(PAGE)

        def kern(ctx):
            # Read the page straddling EOF.
            yield from batcher.fetch(ctx, handle, 15 * PAGE + 2048,
                                     PAGE, dst)

        device.launch(kern, grid=1, block_threads=32)
        got = device.memory.read(dst, PAGE)
        assert np.array_equal(got[:2048], data[15 * PAGE + 2048:])
        assert np.all(got[2048:] == 0)

    def test_oversized_fetch_rejected(self, env):
        device, handle, _ = env
        batcher = TransferBatcher(device, PAGE)
        with pytest.raises(ValueError):

            def kern(ctx):
                yield from batcher.fetch(ctx, handle, 0, 2 * PAGE, 0)

            device.launch(kern, grid=1, block_threads=32)


class TestBatching:
    def _run_many(self, env, enabled):
        device, handle, _ = env
        batcher = TransferBatcher(device, PAGE, enabled=enabled)
        dst = device.alloc(16 * PAGE)

        def kern(ctx):
            p = ctx.warp_id
            yield from batcher.fetch(ctx, handle, p * PAGE, PAGE,
                                     dst + p * PAGE)

        res = device.launch(kern, grid=1, block_threads=16 * 32)
        return batcher, res

    def test_concurrent_fetches_batch(self, env):
        batcher, _ = self._run_many(env, enabled=True)
        assert batcher.stats.transfers == 16
        assert batcher.stats.batches < 16
        assert batcher.stats.mean_batch_size() > 1.5

    def test_disabled_batching_is_one_per_transfer(self, env):
        batcher, _ = self._run_many(env, enabled=False)
        assert batcher.stats.batches == 16

    def test_batching_is_faster(self, env):
        device, handle, data = env
        _, on = self._run_many(env, enabled=True)
        # Fresh environment for a fair comparison.
        device2 = Device(memory_bytes=32 * 1024 * 1024)
        fs = RamFS()
        fs.create("f", data)
        handle2 = HostFileSystem(fs).open("f")
        batcher2 = TransferBatcher(device2, PAGE, enabled=False)
        dst = device2.alloc(16 * PAGE)

        def kern(ctx):
            p = ctx.warp_id
            yield from batcher2.fetch(ctx, handle2, p * PAGE, PAGE,
                                      dst + p * PAGE)

        off = device2.launch(kern, grid=1, block_threads=16 * 32)
        assert on.cycles < off.cycles


class TestStagingRing:
    def _shrunk_ring(self, device, slots):
        """A batcher whose staging ring is smaller than the burst the
        tests throw at it (the constructor sizes the ring generously,
        so shrink it to force reuse pressure)."""
        batcher = TransferBatcher(device, PAGE)
        batcher.num_slots = slots
        batcher._slot_busy = [False] * slots
        batcher._next_slot = 0
        return batcher

    def test_more_fetches_than_slots_no_clobber(self, env):
        """Regression: concurrent fetches beyond the ring size must not
        overwrite a slot whose staging-to-frame copy is in flight."""
        device, handle, data = env
        batcher = self._shrunk_ring(device, 4)
        dst = device.alloc(16 * PAGE)

        def kern(ctx):
            p = ctx.warp_id
            yield from batcher.fetch(ctx, handle, p * PAGE, PAGE,
                                     dst + p * PAGE)

        # 16 warps fetch batched pages concurrently through 4 slots.
        device.launch(kern, grid=1, block_threads=16 * 32)
        got = device.memory.read(dst, 16 * PAGE)
        assert np.array_equal(got, data)
        # Every slot was released once its copy finished.
        assert not any(batcher._slot_busy)

    def test_saturated_ring_waits_instead_of_clobbering(self, env):
        device, handle, data = env
        batcher = self._shrunk_ring(device, 2)
        dst = device.alloc(16 * PAGE)

        def kern(ctx):
            p = ctx.warp_id
            yield from batcher.fetch(ctx, handle, p * PAGE, PAGE,
                                     dst + p * PAGE)

        device.launch(kern, grid=1, block_threads=16 * 32)
        assert batcher.stats.slot_waits > 0
        assert np.array_equal(device.memory.read(dst, 16 * PAGE), data)


class TestSpeculative:
    """BatcherStats invariants when daemon-side (fetch_async) traffic
    shares the batching window with demand fetches."""

    def test_mixed_demand_and_speculative_counters(self, env):
        device, handle, data = env
        batcher = TransferBatcher(device, PAGE)
        dst = device.alloc(16 * PAGE)
        done_at = []

        def kern(ctx):
            p = ctx.warp_id
            if p < 8:
                yield from batcher.fetch(ctx, handle, p * PAGE, PAGE,
                                         dst + p * PAGE)
            elif p == 8:
                # One warp plays readahead daemon: untimed speculative
                # fetches issued into the same aggregation windows.
                for q in range(8, 16):
                    done_at.append(batcher.fetch_async(
                        ctx.now, handle, q * PAGE, PAGE,
                        dst + q * PAGE))
                yield from ctx.sleep(1.0)

        res = device.launch(kern, grid=1, block_threads=9 * 32)
        assert batcher.stats.transfers == 16
        assert batcher.stats.speculative == 8
        assert batcher.stats.speculative <= batcher.stats.transfers
        assert batcher.stats.bytes_moved == 16 * PAGE
        # Speculative fetches coalesce rather than opening a batch each.
        assert batcher.stats.batches < 16
        assert batcher.stats.mean_batch_size() > 1.0
        # Completion times are in the future but within the launch.
        assert all(0 < d <= res.cycles + 1e6 for d in done_at)
        # The speculative bytes landed correctly too.
        got = device.memory.read(dst, 16 * PAGE)
        assert np.array_equal(got, data)

    def test_fetch_async_opens_window_demand_joins(self, env):
        device, handle, _ = env
        batcher = TransferBatcher(device, PAGE)
        dst = device.alloc(2 * PAGE)
        batcher.fetch_async(0.0, handle, 0, PAGE, dst)
        assert batcher.stats.batches == 1

        def kern(ctx):
            yield from batcher.fetch(ctx, handle, PAGE, PAGE, dst + PAGE)

        device.launch(kern, grid=1, block_threads=32)
        # The demand fetch rode the window the daemon opened.
        assert batcher.stats.batches == 1
        assert batcher.stats.transfers == 2

    def test_fetch_async_rejects_oversized(self, env):
        device, handle, _ = env
        batcher = TransferBatcher(device, PAGE)
        with pytest.raises(ValueError):
            batcher.fetch_async(0.0, handle, 0, 2 * PAGE, 0)


class TestWriteback:
    def test_writeback_reaches_file(self, env):
        device, handle, _ = env
        batcher = TransferBatcher(device, PAGE)
        src = device.alloc(PAGE)
        device.memory.write(src, np.full(PAGE, 0x7F, np.uint8))

        def kern(ctx):
            yield from batcher.writeback(ctx, handle, 2 * PAGE, src, PAGE)

        device.launch(kern, grid=1, block_threads=32)
        assert np.all(handle.pread(2 * PAGE, PAGE) == 0x7F)

    def test_writeback_data_override(self, env):
        device, handle, _ = env
        batcher = TransferBatcher(device, PAGE)
        src = device.alloc(PAGE)

        def kern(ctx):
            yield from batcher.writeback(
                ctx, handle, 0, src, PAGE,
                data=np.full(PAGE, 0x11, np.uint8))

        device.launch(kern, grid=1, block_threads=32)
        assert np.all(handle.pread(0, PAGE) == 0x11)
