"""Integration tests: readahead engine inside the GPUfs fault path."""

import numpy as np

from repro.gpu import Device
from repro.host import HostFileSystem
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig

PAGE = 4096
FILE_PAGES = 64


def make_env(num_frames=96, readahead=True, **cfg):
    rng = np.random.RandomState(7)
    data = rng.randint(0, 256, FILE_PAGES * PAGE, dtype=np.uint8)
    fs = RamFS()
    fs.create("data", data)
    device = Device(memory_bytes=64 * 1024 * 1024)
    gpufs = GPUfs(device, HostFileSystem(fs),
                  GPUfsConfig(page_size=PAGE, num_frames=num_frames,
                              readahead=readahead, **cfg))
    fid = gpufs.open("data")
    return device, gpufs, fid, data


def walk_pages(device, gpufs, fid, pages, block_threads=32):
    def kern(ctx):
        for p in pages:
            yield from gpufs.gmmap(ctx, fid, p * PAGE)
            yield from gpufs.gmunmap(ctx, fid, p * PAGE)

    return device.launch(kern, grid=1, block_threads=block_threads)


class TestOffByDefault:
    def test_default_config_builds_no_engine(self):
        device, gpufs, fid, _ = make_env(readahead=False)
        assert gpufs.readahead is None
        walk_pages(device, gpufs, fid, range(8))
        # Pure demand paging: one major fault per page, no speculation.
        assert gpufs.stats.major_faults == 8
        assert gpufs.batcher.stats.speculative == 0


class TestSequentialPrefetch:
    def test_sequential_walk_converts_majors_to_hits(self):
        device, gpufs, fid, data = make_env()
        walk_pages(device, gpufs, fid, range(16))
        ra = gpufs.readahead.stats
        assert ra.issued > 0
        assert ra.hits > 0
        # The first two faults train the detector; everything after
        # should come from readahead.
        assert gpufs.stats.major_faults < 16
        assert gpufs.stats.major_faults + ra.hits >= 16
        # Prefetched pages carry the right bytes.
        for p in range(16):
            entry = gpufs.cache.table.get(fid, p)
            assert entry is not None and entry.ready
            got = device.memory.read(
                gpufs.cache.frame_addr(entry.frame), PAGE)
            assert np.array_equal(got, data[p * PAGE:(p + 1) * PAGE])

    def test_readahead_is_faster_on_sequential(self):
        device_off, gpufs_off, fid_off, _ = make_env(readahead=False)
        off = walk_pages(device_off, gpufs_off, fid_off, range(16))
        device_on, gpufs_on, fid_on, _ = make_env()
        on = walk_pages(device_on, gpufs_on, fid_on, range(16))
        assert on.cycles < off.cycles

    def test_random_access_stays_quiet(self):
        device, gpufs, fid, _ = make_env()
        # Strictly decreasing: every delta is negative, so no stream
        # ever confirms.
        pages = [63, 50, 40, 30, 20, 10, 5, 0]
        walk_pages(device, gpufs, fid, pages)
        ra = gpufs.readahead.stats
        assert ra.issued == 0
        assert gpufs.stats.major_faults == len(pages)

    def test_window_grows_on_sustained_streaming(self):
        device, gpufs, fid, _ = make_env(readahead_window=2)
        walk_pages(device, gpufs, fid, range(32))
        ra = gpufs.readahead.stats
        assert ra.window_grows > 0
        # The histogram saw more than one window size.
        assert len(ra.window_hist) > 1


class TestInflight:
    def test_demand_fault_on_inflight_page_counts_inflight_hit(self):
        device, gpufs, fid, data = make_env()
        got = []

        def kern(ctx):
            if ctx.warp_id == 0:
                # Trains the detector; its second fault issues 2..5.
                for p in range(2):
                    yield from gpufs.gmmap(ctx, fid, p * PAGE)
                    yield from gpufs.gmunmap(ctx, fid, p * PAGE)
            else:
                # Pounces on page 2 the moment it is issued — the
                # speculative transfer is guaranteed still in flight.
                while gpufs.readahead.stats.issued == 0:
                    yield from ctx.sleep(50.0)
                addr = yield from gpufs.gmmap(ctx, fid, 2 * PAGE)
                got.append(ctx.memory.read(addr, PAGE).copy())
                yield from gpufs.gmunmap(ctx, fid, 2 * PAGE)

        device.launch(kern, grid=1, block_threads=64)
        ra = gpufs.readahead.stats
        assert ra.inflight_hits == 1
        assert ra.inflight_hits <= ra.hits
        # The partial wait still yielded the right bytes.
        assert np.array_equal(got[0], data[2 * PAGE:3 * PAGE])

    def test_launch_boundary_completes_inflight(self):
        device, gpufs, fid, _ = make_env()
        walk_pages(device, gpufs, fid, [0, 1])   # issues pages 2..5
        assert gpufs.readahead.inflight_pages > 0
        majors = gpufs.stats.major_faults
        walk_pages(device, gpufs, fid, [2, 3])
        # The daemon finished during the inter-launch gap: the second
        # launch sees ready pages, no new major faults.
        assert gpufs.stats.major_faults == majors
        assert gpufs.readahead.stats.hits >= 2


class TestPoliteness:
    def test_allocate_speculative_never_evicts_demand(self):
        device, gpufs, fid, _ = make_env(num_frames=4, readahead=False)
        walk_pages(device, gpufs, fid, range(4))     # fill with demand
        assert gpufs.cache.allocate_speculative() is None
        # Every demand page is still resident.
        for p in range(4):
            assert gpufs.cache.table.get(fid, p) is not None

    def test_allocate_speculative_reclaims_stale_speculation(self):
        device, gpufs, fid, _ = make_env(num_frames=4, readahead=False)
        walk_pages(device, gpufs, fid, range(4))
        victim = gpufs.cache.table.get(fid, 2)
        victim.speculative = True
        gpufs.cache.mark_speculative(victim.frame)
        wasted = []
        gpufs.cache.spec_listener = type(
            "L", (), {"on_spec_evicted":
                      staticmethod(lambda e: wasted.append(e))})()
        frame = gpufs.cache.allocate_speculative()
        assert frame == victim.frame
        assert gpufs.cache.table.get(fid, 2) is None
        assert wasted == [victim]

    def test_eviction_prefers_speculative_frames(self):
        device, gpufs, fid, _ = make_env(num_frames=4, readahead=False)
        walk_pages(device, gpufs, fid, range(4))
        spec = gpufs.cache.table.get(fid, 2)
        spec.speculative = True
        gpufs.cache.mark_speculative(spec.frame)
        # Demand-fault a fifth page: eviction must pick the marked
        # frame even though the clock hand points at page 0's.
        walk_pages(device, gpufs, fid, [4])
        assert gpufs.cache.table.get(fid, 2) is None
        for p in (0, 1, 3, 4):
            assert gpufs.cache.table.get(fid, p) is not None

    def test_cache_pressure_cancels_and_shrinks(self):
        device, gpufs, fid, _ = make_env(num_frames=6,
                                         readahead_window=8)
        # Hold a reference to each mapped page for the whole kernel so
        # frames stay pinned and speculative allocation runs dry.
        npages = 6

        def kern(ctx):
            for p in range(npages):
                yield from gpufs.gmmap(ctx, fid, p * PAGE)
            for p in range(npages):
                yield from gpufs.gmunmap(ctx, fid, p * PAGE)

        device.launch(kern, grid=1, block_threads=32)
        ra = gpufs.readahead.stats
        assert ra.cancelled > 0
        assert ra.window_shrinks > 0
        # Back-off is invisible to correctness: all pages resident.
        assert gpufs.stats.major_faults + ra.hits >= npages


class TestWasteFeedback:
    def test_spec_eviction_counts_wasted_and_shrinks(self):
        device, gpufs, fid, _ = make_env()
        walk_pages(device, gpufs, fid, [0, 1])
        engine = gpufs.readahead
        (file_id, fpn), stream = next(iter(engine._origin.items()))
        before = stream.window
        entry = gpufs.cache.table.get(file_id, fpn)
        engine.on_spec_evicted(entry)
        assert engine.stats.wasted == 1
        assert stream.window <= before
        assert (file_id, fpn) not in engine._origin


class TestTelemetry:
    def test_profile_exports_readahead_section(self):
        from repro.telemetry import capture, validate_profile

        with capture() as prof:
            device, gpufs, fid, _ = make_env()
            walk_pages(device, gpufs, fid, range(16))
        doc = prof.longest().to_dict()
        validate_profile(doc)
        ra = doc["components"]["readahead"]
        assert ra["issued"] > 0
        assert ra["hits"] > 0
        assert 0.0 < ra["hit_rate"] <= 1.0
        assert any(k.startswith("window_hist_") for k in ra)

    def test_profile_readahead_zeroed_when_off(self):
        from repro.telemetry import capture, validate_profile

        with capture() as prof:
            device, gpufs, fid, _ = make_env(readahead=False)
            walk_pages(device, gpufs, fid, range(4))
        doc = prof.longest().to_dict()
        validate_profile(doc)
        ra = doc["components"]["readahead"]
        assert ra["issued"] == 0 and ra["hit_rate"] == 0.0
