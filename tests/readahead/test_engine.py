"""Integration tests: readahead engine inside the GPUfs fault path."""

import numpy as np

from repro.gpu import Device
from repro.host import HostFileSystem
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig

PAGE = 4096
FILE_PAGES = 64


def make_env(num_frames=96, readahead=True, **cfg):
    rng = np.random.RandomState(7)
    data = rng.randint(0, 256, FILE_PAGES * PAGE, dtype=np.uint8)
    fs = RamFS()
    fs.create("data", data)
    device = Device(memory_bytes=64 * 1024 * 1024)
    gpufs = GPUfs(device, HostFileSystem(fs),
                  GPUfsConfig(page_size=PAGE, num_frames=num_frames,
                              readahead=readahead, **cfg))
    fid = gpufs.open("data")
    return device, gpufs, fid, data


def walk_pages(device, gpufs, fid, pages, block_threads=32):
    def kern(ctx):
        for p in pages:
            yield from gpufs.gmmap(ctx, fid, p * PAGE)
            yield from gpufs.gmunmap(ctx, fid, p * PAGE)

    return device.launch(kern, grid=1, block_threads=block_threads)


class TestOffByDefault:
    def test_default_config_builds_no_engine(self):
        device, gpufs, fid, _ = make_env(readahead=False)
        assert gpufs.readahead is None
        walk_pages(device, gpufs, fid, range(8))
        # Pure demand paging: one major fault per page, no speculation.
        assert gpufs.stats.major_faults == 8
        assert gpufs.batcher.stats.speculative == 0


class TestSequentialPrefetch:
    def test_sequential_walk_converts_majors_to_hits(self):
        device, gpufs, fid, data = make_env()
        walk_pages(device, gpufs, fid, range(16))
        ra = gpufs.readahead.stats
        assert ra.issued > 0
        assert ra.hits > 0
        # The first two faults train the detector; everything after
        # should come from readahead.
        assert gpufs.stats.major_faults < 16
        assert gpufs.stats.major_faults + ra.hits >= 16
        # Prefetched pages carry the right bytes.
        for p in range(16):
            entry = gpufs.cache.table.get(fid, p)
            assert entry is not None and entry.ready
            got = device.memory.read(
                gpufs.cache.frame_addr(entry.frame), PAGE)
            assert np.array_equal(got, data[p * PAGE:(p + 1) * PAGE])

    def test_readahead_is_faster_on_sequential(self):
        device_off, gpufs_off, fid_off, _ = make_env(readahead=False)
        off = walk_pages(device_off, gpufs_off, fid_off, range(16))
        device_on, gpufs_on, fid_on, _ = make_env()
        on = walk_pages(device_on, gpufs_on, fid_on, range(16))
        assert on.cycles < off.cycles

    def test_random_access_stays_quiet(self):
        device, gpufs, fid, _ = make_env()
        # Strictly decreasing: every delta is negative, so no stream
        # ever confirms.
        pages = [63, 50, 40, 30, 20, 10, 5, 0]
        walk_pages(device, gpufs, fid, pages)
        ra = gpufs.readahead.stats
        assert ra.issued == 0
        assert gpufs.stats.major_faults == len(pages)

    def test_window_grows_on_sustained_streaming(self):
        device, gpufs, fid, _ = make_env(readahead_window=2)
        walk_pages(device, gpufs, fid, range(32))
        ra = gpufs.readahead.stats
        assert ra.window_grows > 0
        # The histogram saw more than one window size.
        assert len(ra.window_hist) > 1


class TestInflight:
    def test_demand_fault_on_inflight_page_counts_inflight_hit(self):
        device, gpufs, fid, data = make_env()
        got = []

        def kern(ctx):
            if ctx.warp_id == 0:
                # Trains the detector; its second fault issues 2..5.
                for p in range(2):
                    yield from gpufs.gmmap(ctx, fid, p * PAGE)
                    yield from gpufs.gmunmap(ctx, fid, p * PAGE)
            else:
                # Pounces on page 2 the moment it is issued — the
                # speculative transfer is guaranteed still in flight.
                while gpufs.readahead.stats.issued == 0:
                    yield from ctx.sleep(50.0)
                addr = yield from gpufs.gmmap(ctx, fid, 2 * PAGE)
                got.append(ctx.memory.read(addr, PAGE).copy())
                yield from gpufs.gmunmap(ctx, fid, 2 * PAGE)

        device.launch(kern, grid=1, block_threads=64)
        ra = gpufs.readahead.stats
        assert ra.inflight_hits == 1
        assert ra.inflight_hits <= ra.hits
        # The partial wait still yielded the right bytes.
        assert np.array_equal(got[0], data[2 * PAGE:3 * PAGE])

    def test_launch_boundary_completes_inflight(self):
        device, gpufs, fid, _ = make_env()
        walk_pages(device, gpufs, fid, [0, 1])   # issues pages 2..5
        assert gpufs.readahead.inflight_pages > 0
        majors = gpufs.stats.major_faults
        walk_pages(device, gpufs, fid, [2, 3])
        # The daemon finished during the inter-launch gap: the second
        # launch sees ready pages, no new major faults.
        assert gpufs.stats.major_faults == majors
        assert gpufs.readahead.stats.hits >= 2


class TestPoliteness:
    def test_allocate_speculative_never_evicts_demand(self):
        device, gpufs, fid, _ = make_env(num_frames=4, readahead=False)
        walk_pages(device, gpufs, fid, range(4))     # fill with demand
        assert gpufs.cache.allocate_speculative() is None
        # Every demand page is still resident.
        for p in range(4):
            assert gpufs.cache.table.get(fid, p) is not None

    def test_allocate_speculative_reclaims_stale_speculation(self):
        device, gpufs, fid, _ = make_env(num_frames=4, readahead=False)
        walk_pages(device, gpufs, fid, range(4))
        victim = gpufs.cache.table.get(fid, 2)
        victim.speculative = True
        gpufs.cache.mark_speculative(victim.frame)
        wasted = []
        gpufs.cache.spec_listener = type(
            "L", (), {"on_spec_evicted":
                      staticmethod(lambda e: wasted.append(e))})()
        frame = gpufs.cache.allocate_speculative()
        assert frame == victim.frame
        assert gpufs.cache.table.get(fid, 2) is None
        assert wasted == [victim]

    def test_eviction_prefers_speculative_frames(self):
        device, gpufs, fid, _ = make_env(num_frames=4, readahead=False)
        walk_pages(device, gpufs, fid, range(4))
        spec = gpufs.cache.table.get(fid, 2)
        spec.speculative = True
        gpufs.cache.mark_speculative(spec.frame)
        # Demand-fault a fifth page: eviction must pick the marked
        # frame even though the clock hand points at page 0's.
        walk_pages(device, gpufs, fid, [4])
        assert gpufs.cache.table.get(fid, 2) is None
        for p in (0, 1, 3, 4):
            assert gpufs.cache.table.get(fid, p) is not None

    def test_cache_pressure_cancels_and_shrinks(self):
        device, gpufs, fid, _ = make_env(num_frames=6,
                                         readahead_window=8)
        # Hold a reference to each mapped page for the whole kernel so
        # frames stay pinned and speculative allocation runs dry.
        npages = 6

        def kern(ctx):
            for p in range(npages):
                yield from gpufs.gmmap(ctx, fid, p * PAGE)
            for p in range(npages):
                yield from gpufs.gmunmap(ctx, fid, p * PAGE)

        device.launch(kern, grid=1, block_threads=32)
        ra = gpufs.readahead.stats
        assert ra.cancelled > 0
        assert ra.window_shrinks > 0
        # Back-off is invisible to correctness: all pages resident.
        assert gpufs.stats.major_faults + ra.hits >= npages


class TestWasteFeedback:
    def test_spec_eviction_counts_wasted_and_shrinks(self):
        device, gpufs, fid, _ = make_env()
        walk_pages(device, gpufs, fid, [0, 1])
        engine = gpufs.readahead
        (file_id, fpn), stream = next(iter(engine._origin.items()))
        before = stream.window
        entry = gpufs.cache.table.get(file_id, fpn)
        engine.on_spec_evicted(entry)
        assert engine.stats.wasted == 1
        assert stream.window <= before
        assert (file_id, fpn) not in engine._origin


class TestTelemetry:
    def test_profile_exports_readahead_section(self):
        from repro.telemetry import capture, validate_profile

        with capture() as prof:
            device, gpufs, fid, _ = make_env()
            walk_pages(device, gpufs, fid, range(16))
        doc = prof.longest().to_dict()
        validate_profile(doc)
        ra = doc["components"]["readahead"]
        assert ra["issued"] > 0
        assert ra["hits"] > 0
        assert 0.0 < ra["hit_rate"] <= 1.0
        assert any(k.startswith("window_hist_") for k in ra)

    def test_profile_readahead_zeroed_when_off(self):
        from repro.telemetry import capture, validate_profile

        with capture() as prof:
            device, gpufs, fid, _ = make_env(readahead=False)
            walk_pages(device, gpufs, fid, range(4))
        doc = prof.longest().to_dict()
        validate_profile(doc)
        ra = doc["components"]["readahead"]
        assert ra["issued"] == 0 and ra["hit_rate"] == 0.0


class TestFaultFilterIntegration:
    """REVIEW (high): readahead-served pages must still pass through
    FaultFilter.page_in — the daemon lands raw file bytes and the GPU
    applies the filter (e.g. decryption) at first touch."""

    XOR = 0xA5

    def make_filtered_env(self, **cfg):
        from repro.paging.gpufs import FaultFilter

        rng = np.random.RandomState(11)
        plain = rng.randint(0, 256, FILE_PAGES * PAGE, dtype=np.uint8)
        fs = RamFS()
        fs.create("data", plain ^ np.uint8(self.XOR))   # "ciphertext"
        device = Device(memory_bytes=64 * 1024 * 1024)
        key = self.XOR

        class XorFilter(FaultFilter):
            instructions_per_byte = 0.5

            def page_in(self, data, fpn):
                return data ^ np.uint8(key)

            def page_out(self, data, fpn):
                return data ^ np.uint8(key)

        gpufs = GPUfs(device, HostFileSystem(fs),
                      GPUfsConfig(page_size=PAGE, num_frames=96,
                                  readahead=True, **cfg),
                      fault_filter=XorFilter())
        fid = gpufs.open("data")
        return device, gpufs, fid, plain

    def test_readahead_hits_see_filtered_bytes(self):
        device, gpufs, fid, plain = self.make_filtered_env()
        got = {}

        def kern(ctx):
            for p in range(16):
                addr = yield from gpufs.gmmap(ctx, fid, p * PAGE)
                got[p] = ctx.memory.read(addr, PAGE).copy()
                yield from gpufs.gmunmap(ctx, fid, p * PAGE)

        device.launch(kern, grid=1, block_threads=32)
        # Readahead actually served most pages...
        assert gpufs.readahead.stats.hits > 0
        assert gpufs.stats.major_faults < 16
        # ...and every page came back decrypted.
        for p in range(16):
            assert np.array_equal(got[p], plain[p * PAGE:(p + 1) * PAGE]), \
                f"page {p} bytes wrong (filter skipped?)"

    def test_filter_applied_exactly_once_per_page(self):
        device, gpufs, fid, plain = self.make_filtered_env()
        got = {}

        def kern(ctx):
            for p in list(range(16)) + list(range(16)):   # touch twice
                addr = yield from gpufs.gmmap(ctx, fid, p * PAGE)
                got[p] = ctx.memory.read(addr, PAGE).copy()
                yield from gpufs.gmunmap(ctx, fid, p * PAGE)

        device.launch(kern, grid=1, block_threads=32)
        # A second touch of a promoted page must not re-apply the XOR
        # (which would re-encrypt it).
        for p in range(16):
            assert np.array_equal(got[p], plain[p * PAGE:(p + 1) * PAGE])

    def test_untouched_speculative_pages_stay_raw_until_touch(self):
        device, gpufs, fid, plain = self.make_filtered_env()
        walk_pages(device, gpufs, fid, range(4))
        # Find a speculative page beyond the walk that already landed.
        gpufs.readahead.poll(float("inf"))
        spec = [e for e in gpufs.cache.table.entries()
                if e.speculative and e.ready]
        assert spec, "expected outstanding speculative pages"
        # Touching it now must produce filtered bytes.
        e = spec[0]
        got = []

        def kern(ctx):
            addr = yield from gpufs.gmmap(ctx, fid, e.fpn * PAGE)
            got.append(ctx.memory.read(addr, PAGE).copy())
            yield from gpufs.gmunmap(ctx, fid, e.fpn * PAGE)

        device.launch(kern, grid=1, block_threads=32)
        assert np.array_equal(
            got[0], plain[e.fpn * PAGE:(e.fpn + 1) * PAGE])


class TestDaemonRaces:
    """REVIEW (medium/low): daemon-vs-warp table and frame races."""

    def test_start_transfer_defers_under_bucket_lock(self):
        import types

        device, gpufs, fid, _ = make_env()
        engine = gpufs.readahead
        table = gpufs.cache.table
        lock = table._lock_for(table._hash(fid, 9))
        lock.holder = object()          # a warp is mid-insert
        free_before = len(gpufs.cache._free)
        frame = gpufs.cache.allocate_speculative()
        out = engine._start_transfer(
            types.SimpleNamespace(now=0.0),
            types.SimpleNamespace(file_id=fid), 9, frame,
            gpufs.handle_for(fid))
        lock.holder = None
        assert out is None
        assert engine.stats.deferred == 1
        assert table.get(fid, 9) is None
        # The frame went back to the free list, not leaked.
        assert len(gpufs.cache._free) == free_before
        assert engine.inflight_pages == 0

    def test_allocate_speculative_spares_protected_pages(self):
        device, gpufs, fid, _ = make_env(num_frames=4, readahead=False)
        walk_pages(device, gpufs, fid, range(4))
        for p in range(4):
            e = gpufs.cache.table.get(fid, p)
            e.speculative = True
            gpufs.cache.mark_speculative(e.frame)
        everything = {(fid, p) for p in range(4)}
        assert gpufs.cache.allocate_speculative(everything) is None
        for p in range(4):
            assert gpufs.cache.table.get(fid, p) is not None
        # Exempting all but page 2 reclaims exactly page 2's frame.
        spared = everything - {(fid, 2)}
        frame = gpufs.cache.allocate_speculative(spared)
        assert frame is not None
        assert gpufs.cache.table.get(fid, 2) is None
        for p in (0, 1, 3):
            assert gpufs.cache.table.get(fid, p) is not None

    def test_poll_drops_promoted_and_landed_entries(self):
        device, gpufs, fid, _ = make_env()
        walk_pages(device, gpufs, fid, [0, 1])   # issues a window
        engine = gpufs.readahead
        assert len(engine._inflight) >= 2
        promoted = engine._inflight[0][0]
        landed = engine._inflight[1][0]
        promoted.speculative = False    # as on_hit would
        landed.ready = True             # as GPUfs._wait_ready would
        pkey, lkey = promoted.key, landed.key
        assert lkey in engine._origin
        engine.poll(0.0)
        live = [e for e, _, _ in engine._inflight]
        assert promoted not in live and landed not in live
        # The promoted entry's origin record is swept defensively; the
        # landed-but-untouched one stays for on_hit's window feedback.
        assert pkey not in engine._origin
        assert lkey in engine._origin
