"""Unit tests for the readahead stream detector."""

from repro.readahead import DetectorParams, StreamDetector


def feed(det, fpns, file_id=0, hint=0):
    """Feed a page sequence; return the observe() results."""
    return [det.observe(file_id, fpn, hint=hint) for fpn in fpns]


class TestConfirmation:
    def test_sequential_confirms_on_second_access(self):
        det = StreamDetector()
        first, second = feed(det, [10, 11])
        assert first is None
        assert second is not None and second.confirmed
        assert second.stride == 1
        assert second.window == DetectorParams().initial_window

    def test_strided_stream_confirms(self):
        det = StreamDetector()
        results = feed(det, [0, 32, 64])
        assert results[0] is None
        assert results[1].stride == 32
        assert results[2].run == 3

    def test_stride_beyond_max_never_confirms(self):
        det = StreamDetector(DetectorParams(max_stride=16))
        results = feed(det, [0, 100, 300, 600])
        assert all(r is None for r in results)

    def test_backward_access_never_confirms(self):
        det = StreamDetector()
        results = feed(det, [100, 90, 80, 70])
        assert all(r is None for r in results)

    def test_refault_of_same_page_is_neutral(self):
        det = StreamDetector()
        feed(det, [5, 6])
        stream = det.observe(0, 6)
        assert stream is not None and stream.run == 2
        # An unconfirmed stream's refault stays unconfirmed.
        det2 = StreamDetector()
        det2.observe(0, 5)
        assert det2.observe(0, 5) is None


class TestStreamIdentity:
    def test_hints_separate_interleaved_streams(self):
        det = StreamDetector()
        # Two warps interleave sequential runs over disjoint regions;
        # with per-hint streams both confirm.
        a1 = det.observe(0, 0, hint=0)
        b1 = det.observe(0, 100, hint=1)
        a2 = det.observe(0, 1, hint=0)
        b2 = det.observe(0, 101, hint=1)
        assert a1 is None and b1 is None
        assert a2.confirmed and b2.confirmed
        assert a2 is not b2

    def test_files_do_not_share_streams(self):
        det = StreamDetector()
        det.observe(0, 0)
        assert det.observe(1, 1) is None  # new embryo, not a confirm

    def test_lru_recycling_bounds_stream_count(self):
        det = StreamDetector(DetectorParams(max_streams=2))
        for hint in range(5):
            det.observe(0, hint * 10, hint=hint)
        assert len(det.streams) == 2
        assert det.counters.streams_recycled == 3
        assert det.counters.streams_created == 5


class TestWindowFeedback:
    def test_grow_doubles_and_clamps(self):
        det = StreamDetector(DetectorParams(initial_window=4,
                                            max_window=16))
        stream = feed(det, [0, 1])[1]
        assert det.grow(stream) and stream.window == 8
        assert det.grow(stream) and stream.window == 16
        assert not det.grow(stream) and stream.window == 16

    def test_shrink_halves_and_clamps(self):
        det = StreamDetector(DetectorParams(initial_window=8,
                                            min_window=2))
        stream = feed(det, [0, 1])[1]
        assert det.shrink(stream) and stream.window == 4
        assert det.shrink(stream) and stream.window == 2
        assert not det.shrink(stream) and stream.window == 2

    def test_pattern_break_keeps_learnt_window(self):
        det = StreamDetector()
        stream = feed(det, [0, 1])[1]
        det.grow(stream)
        grown = stream.window
        # A backward seek breaks the pattern ...
        assert det.observe(0, 1000) is None
        assert not stream.confirmed and stream.next_ra is None
        # ... but re-confirming resumes with the learnt window.
        again = det.observe(0, 1001)
        assert again is stream and again.confirmed
        assert again.window == grown
