"""Unit tests for the generic warp-level syscall layer
(:mod:`repro.syscalls`): dispatch, read/write/flush semantics,
madvise, ftruncate, and the non-blocking ticket calls."""

import numpy as np
import pytest

from repro.gpu import Device
from repro.host import HostFileSystem, O_RDWR
from repro.host.ramfs import FileSystemError, RamFS
from repro.paging import GPUfs, GPUfsConfig
from repro.syscalls import (
    MADV_DONTNEED,
    MADV_WILLNEED,
    SYSCALLS,
    SyscallTicket,
)

PAGE = 4096


def make_env(npages=8, num_frames=16, flags=O_RDWR, sanitize=False,
             seed=11):
    data = np.random.RandomState(seed).randint(
        0, 256, npages * PAGE, dtype=np.uint8)
    fs = RamFS()
    fs.create("data", data)
    device = Device(memory_bytes=64 * 1024 * 1024)
    gfs = GPUfs(device, HostFileSystem(fs),
                GPUfsConfig(page_size=PAGE, num_frames=num_frames,
                            sanitize=sanitize))
    fid = gfs.open("data", flags)
    return device, gfs, fid, data


def drive(device, kern):
    device.launch(kern, grid=1, block_threads=32)


class TestDispatch:
    def test_taxonomy_covers_the_five_calls(self):
        for name in ("pread", "pwrite", "msync", "madvise", "ftruncate"):
            assert name in SYSCALLS

    def test_ordering_and_blocking_match_the_paper_taxonomy(self):
        # GPU-syscalls paper §3: msync/ftruncate are strong-ordered
        # and blocking; pread/pwrite relaxed blocking; madvise and the
        # _async variants non-blocking.
        assert SYSCALLS["msync"].ordering == "strong"
        assert SYSCALLS["ftruncate"].ordering == "strong"
        assert SYSCALLS["pread"].ordering == "relaxed"
        assert SYSCALLS["pread"].blocking
        assert not SYSCALLS["madvise"].blocking
        assert not SYSCALLS["pread_async"].blocking
        assert not SYSCALLS["pwrite_async"].blocking

    def test_invoke_dispatches_by_name(self):
        device, gfs, fid, data = make_env()
        dst = device.alloc(256)
        sc = gfs.syscalls

        def kern(ctx):
            n = yield from sc.invoke(ctx, "pread", fid, 0, 256, dst)
            assert n == 256

        drive(device, kern)
        assert sc.stats.pread == 1
        got = device.memory.read(dst, 256)
        assert np.array_equal(got, data[:256])

    def test_invoke_unknown_name_raises(self):
        device, gfs, fid, _ = make_env()
        sc = gfs.syscalls

        def kern(ctx):
            yield from sc.invoke(ctx, "creat", fid)

        with pytest.raises(ValueError, match="creat"):
            drive(device, kern)


class TestReadWrite:
    def test_pwrite_then_msync_persists(self):
        device, gfs, fid, data = make_env()
        sc = gfs.syscalls
        payload = np.arange(512, dtype=np.uint8) % 251
        src = device.alloc(512)
        device.memory.write(src, payload)
        off = 3 * PAGE + 4000         # unaligned, page-straddling

        def kern(ctx):
            yield from sc.pwrite(ctx, fid, off, 512, src)
            flushed = yield from sc.msync(ctx, fid)
            assert flushed >= 1

        drive(device, kern)
        expect = data.copy()
        expect[off:off + 512] = payload
        final = gfs.handle_for(fid).pread(0, len(data))
        assert np.array_equal(final, expect)
        assert sc.stats.pwrite == 1
        assert sc.stats.bytes_written == 512
        assert sc.stats.msync == 1
        assert sc.stats.writeback_bytes == 2 * PAGE  # straddles 2 pages

    def test_pread_after_pwrite_sees_uncommitted_data(self):
        """Read-your-writes through the page cache, before any msync."""
        device, gfs, fid, _ = make_env()
        sc = gfs.syscalls
        payload = np.full(128, 0xAB, dtype=np.uint8)
        src = device.alloc(128)
        dst = device.alloc(128)
        device.memory.write(src, payload)

        def kern(ctx):
            yield from sc.pwrite(ctx, fid, PAGE, 128, src)
            yield from sc.pread(ctx, fid, PAGE, 128, dst)

        drive(device, kern)
        assert np.array_equal(device.memory.read(dst, 128), payload)

    def test_pwrite_to_read_only_fd_raises(self):
        device, gfs, fid, _ = make_env(flags=0)  # O_RDONLY
        sc = gfs.syscalls
        src = device.alloc(64)

        def kern(ctx):
            yield from sc.pwrite(ctx, fid, 0, 64, src)

        with pytest.raises(FileSystemError, match="pwrite"):
            drive(device, kern)
        assert sc.stats.pwrite == 0      # rejected before accounting

    def test_zero_length_rejected(self):
        device, gfs, fid, _ = make_env()
        sc = gfs.syscalls
        buf = device.alloc(64)

        def kern(ctx):
            yield from sc.pread(ctx, fid, 0, 0, buf)

        with pytest.raises(ValueError):
            drive(device, kern)

    def test_blocking_calls_account_blocked_cycles(self):
        device, gfs, fid, _ = make_env()
        sc = gfs.syscalls
        dst = device.alloc(PAGE)

        def kern(ctx):
            yield from sc.pread(ctx, fid, 0, PAGE, dst)

        drive(device, kern)
        assert sc.stats.blocked_cycles > 0


class TestMsync:
    def test_msync_range_flushes_only_overlapping_pages(self):
        device, gfs, fid, data = make_env()
        sc = gfs.syscalls
        src = device.alloc(64)
        device.memory.write(src, np.full(64, 7, dtype=np.uint8))
        flushed = []

        def kern(ctx):
            yield from sc.pwrite(ctx, fid, 0, 64, src)
            yield from sc.pwrite(ctx, fid, 5 * PAGE, 64, src)
            n = yield from sc.msync(ctx, fid, 0, PAGE)
            flushed.append(n)

        drive(device, kern)
        assert flushed[0] == 1           # only page 0, not page 5
        final = gfs.handle_for(fid).pread(0, len(data))
        assert np.array_equal(final[:64], np.full(64, 7, dtype=np.uint8))
        assert np.array_equal(final[5 * PAGE:5 * PAGE + 64],
                              data[5 * PAGE:5 * PAGE + 64])

    def test_dirty_eviction_writes_back(self):
        """Dirty pages forced out by frame pressure reach the host
        even without msync."""
        device, gfs, fid, _ = make_env(npages=8, num_frames=2)
        sc = gfs.syscalls
        src = device.alloc(64)
        device.memory.write(src, np.full(64, 9, dtype=np.uint8))

        def kern(ctx):
            for p in range(8):
                yield from sc.pwrite(ctx, fid, p * PAGE, 64, src)

        drive(device, kern)
        assert sc.stats.writeback_bytes >= 6 * PAGE
        final = gfs.handle_for(fid).pread(0, 64)
        # page 0 was evicted (frame pressure) and written back
        assert np.array_equal(final, np.full(64, 9, dtype=np.uint8))


class TestMadvise:
    def test_willneed_prefetches_and_first_touch_is_minor(self):
        device, gfs, fid, data = make_env()
        sc = gfs.syscalls
        dst = device.alloc(PAGE)

        def kern(ctx):
            yield from sc.madvise(ctx, fid, 2 * PAGE, 2 * PAGE,
                                  MADV_WILLNEED)
            yield from ctx.sleep(100_000, io_wait=True)
            yield from sc.pread(ctx, fid, 2 * PAGE, PAGE, dst)

        drive(device, kern)
        assert sc.stats.advise_prefetched == 2
        assert gfs.stats.major_faults == 0
        assert gfs.stats.minor_faults >= 1
        assert np.array_equal(device.memory.read(dst, PAGE),
                              data[2 * PAGE:3 * PAGE])

    def test_dontneed_drops_clean_resident_page(self):
        device, gfs, fid, _ = make_env()
        sc = gfs.syscalls
        dst = device.alloc(PAGE)

        def kern(ctx):
            yield from sc.pread(ctx, fid, 0, PAGE, dst)
            yield from sc.madvise(ctx, fid, 0, PAGE, MADV_DONTNEED)
            yield from sc.pread(ctx, fid, 0, PAGE, dst)

        drive(device, kern)
        assert sc.stats.advise_dropped == 1
        assert gfs.stats.major_faults == 2   # re-faulted from host

    def test_dontneed_defers_on_dirty_page(self):
        device, gfs, fid, _ = make_env()
        sc = gfs.syscalls
        src = device.alloc(64)

        def kern(ctx):
            yield from sc.pwrite(ctx, fid, 0, 64, src)
            yield from sc.madvise(ctx, fid, 0, PAGE, MADV_DONTNEED)

        drive(device, kern)
        assert sc.stats.advise_dropped == 0
        assert sc.stats.advise_deferred >= 1

    def test_unknown_advice_raises(self):
        device, gfs, fid, _ = make_env()
        sc = gfs.syscalls

        def kern(ctx):
            yield from sc.madvise(ctx, fid, 0, PAGE, 99)

        with pytest.raises(ValueError, match="advice"):
            drive(device, kern)


class TestFtruncate:
    def test_shrink_discards_beyond_eof_and_zeroes_tail(self):
        device, gfs, fid, data = make_env(npages=4)
        sc = gfs.syscalls
        dst = device.alloc(PAGE)
        new_size = PAGE + 100

        def kern(ctx):
            yield from sc.pread(ctx, fid, PAGE, PAGE, dst)  # resident
            yield from sc.ftruncate(ctx, fid, new_size)

        drive(device, kern)
        assert gfs.handle_for(fid).size() == new_size
        assert sc.stats.ftruncate == 1
        # The resident straddle page's tail beyond EOF is zeroed, so a
        # later writeback cannot resurrect stale bytes.
        final = gfs.handle_for(fid).pread(0, new_size)
        assert np.array_equal(final, data[:new_size])

    def test_shrink_with_pinned_page_beyond_eof_raises(self):
        device, gfs, fid, _ = make_env(npages=4)
        sc = gfs.syscalls

        def kern(ctx):
            yield from gfs.gmmap(ctx, fid, 3 * PAGE)  # pin page 3
            yield from sc.ftruncate(ctx, fid, PAGE)

        with pytest.raises(RuntimeError):
            drive(device, kern)

    def test_negative_size_rejected(self):
        device, gfs, fid, _ = make_env()
        sc = gfs.syscalls

        def kern(ctx):
            yield from sc.ftruncate(ctx, fid, -1)

        with pytest.raises(ValueError):
            drive(device, kern)


class TestAsyncTickets:
    def test_pread_async_returns_ticket_and_wait_blocks(self):
        device, gfs, fid, data = make_env()
        sc = gfs.syscalls
        dst = device.alloc(2 * PAGE)
        waited = []

        def kern(ctx):
            t = yield from sc.pread_async(ctx, fid, 0, 2 * PAGE, dst)
            assert isinstance(t, SyscallTicket)
            t0 = ctx.now
            n = yield from sc.wait(ctx, t)
            waited.append((n, ctx.now - t0))

        drive(device, kern)
        assert waited[0][0] == 2 * PAGE
        assert waited[0][1] > 0          # the wait actually slept
        assert sc.stats.tickets_issued == 1
        assert sc.stats.tickets_waited == 1
        assert np.array_equal(device.memory.read(dst, 2 * PAGE),
                              data[:2 * PAGE])

    def test_wait_is_idempotent(self):
        device, gfs, fid, _ = make_env()
        sc = gfs.syscalls
        dst = device.alloc(PAGE)

        def kern(ctx):
            t = yield from sc.pread_async(ctx, fid, 0, PAGE, dst)
            yield from sc.wait(ctx, t)
            yield from sc.wait(ctx, t)   # second wait: no extra sleep

        drive(device, kern)
        assert sc.stats.tickets_waited == 1

    def test_pwrite_async_reaches_host_directly(self):
        device, gfs, fid, _ = make_env()
        sc = gfs.syscalls
        payload = np.full(256, 0x5C, dtype=np.uint8)
        src = device.alloc(256)
        device.memory.write(src, payload)

        def kern(ctx):
            t = yield from sc.pwrite_async(ctx, fid, 0, 256, src)
            yield from sc.wait(ctx, t)

        drive(device, kern)
        assert np.array_equal(gfs.handle_for(fid).pread(0, 256), payload)

    def test_pwrite_async_to_read_only_fd_raises(self):
        device, gfs, fid, _ = make_env(flags=0)
        sc = gfs.syscalls
        src = device.alloc(64)

        def kern(ctx):
            yield from sc.pwrite_async(ctx, fid, 0, 64, src)

        with pytest.raises(FileSystemError):
            drive(device, kern)


class TestTelemetry:
    def test_syscall_counters_reach_profile_v7(self):
        from repro.telemetry.profiler import capture

        with capture(trace=False) as prof:
            device, gfs, fid, _ = make_env()
            sc = gfs.syscalls
            buf = device.alloc(PAGE)

            def kern(ctx):
                yield from sc.pread(ctx, fid, 0, PAGE, buf)
                yield from sc.pwrite(ctx, fid, 0, PAGE, buf)
                yield from sc.msync(ctx, fid)

            drive(device, kern)
        doc = prof.profiles[0].to_dict()
        assert doc["version"] == 8
        sy = doc["components"]["syscalls"]
        assert sy["pread"] == 1
        assert sy["pwrite"] == 1
        assert sy["msync"] == 1
        assert sy["writeback_bytes"] == PAGE
        assert sy["blocked_cycles"] > 0
