"""Property test: concurrent pread/pwrite/msync interleavings
converge to the serialized host oracle.

Each warp owns a disjoint *byte* region of one shared file — but the
regions are deliberately not page-aligned, so neighbouring warps share
page-cache frames and their faults, copies, msyncs, and write-backs
interleave on the same pages.  Whatever the engine's interleaving, the
final file bytes must equal applying each warp's writes in its program
order (regions are disjoint, so cross-warp order cannot matter).  The
runtime sanitizer is on throughout.
"""

import numpy as np
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.gpu import Device
from repro.host import HostFileSystem, O_RDWR
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig

PAGE = 4096
NWARPS = 3
REGION = 3000           # not page-aligned: warps share pages
MAX_IO = 256

op_strategy = st.tuples(
    st.sampled_from(["pread", "pwrite", "pwrite", "msync"]),
    st.integers(min_value=0, max_value=REGION - 1),
    st.integers(min_value=1, max_value=MAX_IO),
)

@settings(max_examples=12, deadline=None)
@given(st.lists(st.lists(op_strategy, min_size=0, max_size=6),
                min_size=NWARPS, max_size=NWARPS),
       st.integers(min_value=0, max_value=2**31 - 1))
# Regression: warp 0's msync used to clear the dirty bit *after* its
# PCIe sleep, wiping the re-mark from warp 1's second pwrite that
# landed during the sleep — the trailing msync then skipped the page
# and the write never reached the host.
@example(per_warp_ops=[
    [("pread", 0, 1), ("pread", 0, 1), ("pread", 0, 1)],
    [("pread", 0, 1), ("pwrite", 0, 1), ("msync", 0, 1),
     ("pwrite", 0, 1)],
    []], seed=0)
def test_concurrent_syscalls_match_serial_oracle(per_warp_ops, seed):
    total_bytes = NWARPS * REGION
    rng = np.random.RandomState(seed % 2**32)
    initial = rng.randint(0, 256, total_bytes, dtype=np.uint8)
    fs = RamFS()
    fs.create("f", initial.copy())
    device = Device(memory_bytes=64 * 1024 * 1024)
    gfs = GPUfs(device, HostFileSystem(fs),
                GPUfsConfig(page_size=PAGE, num_frames=8,
                            sanitize=True))
    fid = gfs.open("f", O_RDWR)
    sc = gfs.syscalls

    # Clamp each op into its warp's region and give every pwrite a
    # deterministic payload staged in device memory.
    plans = []       # per warp: list of (op, file_off, n, dev_addr)
    payloads = []    # (dev_offset, bytes)
    staged = 0
    for w, ops in enumerate(per_warp_ops):
        base = w * REGION
        plan = []
        for i, (op, off, n) in enumerate(ops):
            n = min(n, REGION - off)
            foff = base + off
            if op == "msync":
                plan.append(("msync", 0, 0, 0))
                continue
            plan.append((op, foff, n, staged))
            if op == "pwrite":
                payloads.append(
                    (staged, ((np.arange(n) + w * 37 + i * 11) % 251
                              ).astype(np.uint8)))
            staged += -(-n // 16) * 16
        # Always persist the warp's writes before it exits.
        plan.append(("msync", 0, 0, 0))
        plans.append(plan)
    buf = device.alloc(max(staged, 16))
    for dev_off, data in payloads:
        device.memory.write(buf + dev_off, data)

    def kern(ctx):
        for op, foff, n, dev_off in plans[ctx.warp_id]:
            if op == "msync":
                yield from sc.msync(ctx, fid)
            elif op == "pwrite":
                yield from sc.pwrite(ctx, fid, foff, n, buf + dev_off)
            else:
                yield from sc.pread(ctx, fid, foff, n, buf + dev_off)

    device.launch(kern, grid=1, block_threads=NWARPS * 32)

    # Serialized oracle: apply each warp's writes in program order.
    expect = initial.copy()
    for w, plan in enumerate(plans):
        for op, foff, n, dev_off in plan:
            if op == "pwrite":
                data = next(d for o, d in payloads if o == dev_off)
                expect[foff:foff + n] = data
    final = gfs.handle_for(fid).pread(0, total_bytes)
    assert np.array_equal(final, expect)
