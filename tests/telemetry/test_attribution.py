"""Cycle-attribution analyzer: exact math on hand-built traces.

Every number in :class:`TestSyntheticLaunch` is derived by hand from a
two-warp timeline — no simulator involved — so an analyzer regression
shows up as a wrong *number*, not a vaguely different distribution.
The hypothesis test pins the tiling invariant the per-warp rows
guarantee: ``hidden + exposed + idle == cycles`` for every warp.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.trace import TraceEvent, Tracer, events_from_chrome_trace
from repro.telemetry.attribution import (
    TruncatedTraceError,
    attribute_chrome_trace,
    attribute_events,
    attribute_tracer,
    has_attribution_events,
)


def ev(warp, kind, start, end, detail="", sm=0, block=0):
    return TraceEvent(warp=warp, block=block, kind=kind, start=start,
                      end=end, detail=detail, sm=sm)


#: Two warps on one SM over [0, 100):
#:   warp 0: issue [0,10), memory stall [10,60), issue [60,70)
#:   warp 1: issue [10,40), translation stall [40,60), issue [90,100)
#: plus one translation event per warp (details chosen by hand).
SYNTH = [
    ev(0, "issue", 0, 10),
    ev(0, "stall", 10, 60, "memory"),
    ev(0, "issue", 60, 70),
    ev(1, "issue", 10, 40),
    ev(1, "stall", 40, 60, "translation"),
    ev(1, "issue", 90, 100),
    # Warp 1's translation sits in [40,60) where no other warp issues:
    # all 10 latency cycles exposed, the 5 pre-hidden stay hidden.
    ev(1, "translation", 40, 60, "iss=5;lat=10;hid=5"),
    # Warp 0's translation sits in [10,40), fully covered by warp 1's
    # issue interval: nothing exposed.
    ev(0, "translation", 10, 40, "iss=4;lat=8;hid=0"),
]


class TestSyntheticLaunch:
    @pytest.fixture(scope="class")
    def report(self):
        return attribute_events(SYNTH)

    def test_launch_shape(self, report):
        assert report.launch_cycles == 100
        assert report.warps == 2
        assert report.sms == 1
        assert report.events == len(SYNTH)

    def test_issue_and_stall_totals(self, report):
        assert report.issue_cycles == 60          # 20 + 40
        assert report.stall_cycles == {"memory": 50.0,
                                       "translation": 20.0}

    def test_warp0_row_exact(self, report):
        row = {r["warp"]: r for r in report.warp_rows}[0]
        # Memory stall [10,60) is covered by warp 1's issue [10,40):
        # 30 of its 50 cycles are hidden.
        assert row["issue"] == 20
        assert row["stall"] == 50
        assert row["hidden"] == 20 + 30
        assert row["exposed"] == 20
        assert row["idle"] == 30

    def test_warp1_row_exact(self, report):
        row = {r["warp"]: r for r in report.warp_rows}[1]
        # Translation stall [40,60) has no concurrent issuer at all.
        assert row["issue"] == 40
        assert row["stall"] == 20
        assert row["hidden"] == 40
        assert row["exposed"] == 20
        assert row["idle"] == 40

    def test_rows_tile_the_span(self, report):
        for row in report.warp_rows:
            assert row["hidden"] + row["exposed"] + row["idle"] \
                == pytest.approx(row["cycles"])

    def test_critical_path_exact(self, report):
        # Issue union [0,40) u [60,70) u [90,100) leaves gaps [40,60)
        # and [70,90).  The first is covered half by the memory stall,
        # half by the translation stall; the second by nothing.
        assert report.critical_path_cycles == 40
        assert report.critical_path == {
            "memory": pytest.approx(10.0),
            "translation": pytest.approx(10.0),
            "idle": pytest.approx(20.0),
        }

    def test_translation_split_exact(self, report):
        t = report.translation
        assert t.events == 2
        assert t.issue_slots == 9                 # 5 + 4
        assert t.total == 32                      # 20 + 12
        # Warp 1: zero issue coverage -> lat=10 exposed.
        # Warp 0: full coverage -> nothing exposed.
        assert t.exposed == pytest.approx(10.0)
        assert t.hidden == pytest.approx(22.0)
        assert t.hidden_fraction == pytest.approx(22.0 / 32.0)

    def test_report_round_trips_to_dict(self, report):
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["translation"]["hidden_fraction"] \
            == pytest.approx(22.0 / 32.0)
        comp = report.to_component()
        assert comp["attributed"] == 1
        assert comp["translation_cycles"] == 32


class TestContention:
    def test_issue_queue_contention_exposes_issue_slots(self):
        # Warp 0's translation is fully covered by warp 1's issue, but
        # warp 2 queue-stalls the whole time: the SM's issue server was
        # contended, so the 10 issue slots were NOT free.
        events = [
            ev(0, "issue", 0, 10),
            ev(1, "issue", 0, 10),
            ev(2, "stall", 0, 10, "issue_queue"),
            ev(0, "translation", 0, 10, "iss=10;lat=0;hid=0"),
        ]
        t = attribute_events(events).translation
        assert t.total == 10
        assert t.exposed == pytest.approx(10.0)
        assert t.hidden == pytest.approx(0.0)

    def test_other_sm_issue_does_not_hide(self):
        # Cover only on SM 1; warp 0's stall on SM 0 stays exposed.
        events = [
            ev(0, "issue", 0, 10, sm=0),
            ev(0, "stall", 10, 30, "memory", sm=0),
            ev(1, "issue", 10, 30, sm=1),
        ]
        report = attribute_events(events)
        row = {r["warp"]: r for r in report.warp_rows}[0]
        assert row["exposed"] == 20
        assert report.sms == 2


class TestTruncationRefusal:
    def test_dropped_events_raise(self):
        with pytest.raises(TruncatedTraceError, match="dropped 3"):
            attribute_events(SYNTH, dropped=3)

    def test_overflowed_tracer_refused(self):
        tracer = Tracer(max_events=2)
        for e in SYNTH:
            tracer.record(e.warp, e.block, e.kind, e.start, e.end,
                          e.detail, e.sm)
        assert tracer.dropped == len(SYNTH) - 2
        with pytest.raises(TruncatedTraceError):
            attribute_tracer(tracer)

    def test_truncated_chrome_trace_refused(self):
        tracer = Tracer(max_events=2)
        for e in SYNTH:
            tracer.record(e.warp, e.block, e.kind, e.start, e.end,
                          e.detail, e.sm)
        trace = tracer.to_chrome_trace()
        with pytest.raises(TruncatedTraceError):
            attribute_chrome_trace(trace)


class TestChromeTraceRoundTrip:
    def _tracer(self):
        tracer = Tracer()
        for e in SYNTH:
            tracer.record(e.warp, e.block, e.kind, e.start, e.end,
                          e.detail, e.sm)
        return tracer

    def test_cycles_export_round_trips(self):
        tracer = self._tracer()
        events, dropped = events_from_chrome_trace(
            tracer.to_chrome_trace())
        assert dropped == 0
        direct = attribute_tracer(tracer)
        via_chrome = attribute_events(events)
        assert via_chrome.to_dict() == direct.to_dict()

    def test_microsecond_export_round_trips(self):
        class Spec:
            clock_hz = 823.5e6

        tracer = self._tracer()
        trace = tracer.to_chrome_trace(Spec())
        assert trace["otherData"]["time_unit"] == "us"
        direct = attribute_tracer(tracer)
        report = attribute_chrome_trace(trace)
        assert report.translation.hidden_fraction \
            == pytest.approx(direct.translation.hidden_fraction)
        assert report.launch_cycles \
            == pytest.approx(direct.launch_cycles)

    def test_microseconds_without_clock_rejected(self):
        class Spec:
            clock_hz = 1e9

        trace = self._tracer().to_chrome_trace(Spec())
        del trace["otherData"]["clock_hz"]
        with pytest.raises(ValueError, match="clock_hz"):
            events_from_chrome_trace(trace)


class TestEdgeCases:
    def test_empty_trace(self):
        report = attribute_events([])
        assert report.launch_cycles == 0
        assert report.warp_rows == []
        assert report.translation.total == 0

    def test_macro_ops_only_trace_has_no_rows(self):
        events = [ev(0, "compute", 0, 5), ev(0, "memaccess", 5, 30)]
        assert not has_attribution_events(events)
        report = attribute_events(events)
        assert report.warp_rows == []
        assert report.events == 2

    def test_launch_cycles_override_extends_span(self):
        report = attribute_events([ev(0, "issue", 0, 10)],
                                  launch_cycles=50)
        assert report.launch_cycles == 50
        row = report.warp_rows[0]
        assert row["idle"] == 40

    def test_exposed_clamped_to_total(self):
        # lat alone exceeds total sanity: exposed never exceeds total.
        events = [ev(0, "translation", 0, 0, "iss=0;lat=7;hid=0")]
        t = attribute_events(events).translation
        assert t.exposed <= t.total == 7


# ----------------------------------------------------------------------
# Property: per-warp rows tile the launch span
# ----------------------------------------------------------------------
@st.composite
def warp_timelines(draw):
    """Random issue/stall segments for a handful of warps on 2 SMs."""
    events = []
    n_warps = draw(st.integers(min_value=1, max_value=4))
    for warp in range(n_warps):
        sm = warp % 2
        cursor = draw(st.integers(min_value=0, max_value=5))
        for _ in range(draw(st.integers(min_value=1, max_value=5))):
            dur = draw(st.integers(min_value=1, max_value=20))
            kind = draw(st.sampled_from(["issue", "stall", "gap"]))
            if kind == "issue":
                events.append(ev(warp, "issue", cursor, cursor + dur,
                                 sm=sm))
            elif kind == "stall":
                reason = draw(st.sampled_from(
                    ["memory", "translation", "issue_queue", "io"]))
                events.append(ev(warp, "stall", cursor, cursor + dur,
                                 reason, sm=sm))
            cursor += dur
    return events


@settings(max_examples=60, deadline=None)
@given(warp_timelines())
def test_hidden_exposed_idle_tile_every_warp(events):
    report = attribute_events(events)
    for row in report.warp_rows:
        assert row["hidden"] + row["exposed"] + row["idle"] \
            == pytest.approx(row["cycles"])
        assert row["hidden"] >= row["issue"] - 1e-9
        assert 0 <= row["exposed"] <= row["stall"] + 1e-9
        assert row["idle"] >= -1e-9
    assert report.issue_cycles == pytest.approx(
        sum(r["issue"] for r in report.warp_rows))
    assert report.idle_cycles == pytest.approx(
        sum(r["idle"] for r in report.warp_rows))
