"""Chrome trace_event export: structural validity and paging spans."""

import json

import pytest

from repro.gpu import Device, K80_SPEC
from repro.gpu.trace import Tracer
from repro.telemetry import capture
from repro.workloads.filebench import make_file_env

PAGE = 4096


@pytest.fixture
def traced_fault_run():
    """A launch with both engine macro-ops and paging spans."""
    npages = 4
    tracer = Tracer()
    device, gpufs, fid, _ = make_file_env(
        npages * PAGE, num_frames=npages + 4,
        memory_bytes=npages * PAGE + 32 * 1024 * 1024)

    def kern(ctx):
        for p in range(npages):
            yield from gpufs.gmmap(ctx, fid, p * PAGE)
            yield from gpufs.gmunmap(ctx, fid, p * PAGE)

    device.launch(kern, grid=1, block_threads=64, tracer=tracer)
    return device, tracer


def _validate_chrome_trace(doc):
    """Assert the Chrome trace_event contract our exporter relies on:
    X (complete) events with non-negative ts/dur, sorted by ts, and
    B/E pairs (if any) properly matched per track."""
    assert isinstance(doc["traceEvents"], list)
    open_stack = {}
    last_ts = None
    for ev in doc["traceEvents"]:
        assert ev["ph"] in ("X", "B", "E", "M", "C")
        if ev["ph"] == "M":
            continue
        assert ev["ts"] >= 0
        if last_ts is not None:
            assert ev["ts"] >= last_ts
        last_ts = ev["ts"]
        track = (ev["pid"], ev["tid"])
        if ev["ph"] == "X":
            assert ev["dur"] >= 0
        elif ev["ph"] == "B":
            open_stack.setdefault(track, []).append(ev["name"])
        elif ev["ph"] == "E":
            assert open_stack.get(track), "E without matching B"
            open_stack[track].pop()
    assert not any(v for v in open_stack.values()), "unclosed B events"


class TestChromeTrace:
    def test_export_is_valid_json_and_well_formed(self, traced_fault_run):
        device, tracer = traced_fault_run
        doc = json.loads(json.dumps(tracer.to_chrome_trace(device.spec)))
        _validate_chrome_trace(doc)

    def test_spans_cover_engine_and_paging(self, traced_fault_run):
        _, tracer = traced_fault_run
        doc = tracer.to_chrome_trace()
        names = {e["name"] for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        assert "memaccess" in names or "compute" in names
        assert "major_fault" in names
        assert "page_in" in names
        cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"engine", "paging"} <= cats

    def test_one_track_per_sm_and_warp(self, traced_fault_run):
        device, tracer = traced_fault_run
        doc = tracer.to_chrome_trace(device.spec)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        proc_names = {e["args"]["name"] for e in meta
                      if e["name"] == "process_name"}
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert any(n.startswith("SM ") for n in proc_names)
        assert any(n.startswith("warp ") for n in thread_names)
        # every span lands on a declared track
        tracks = {(e["pid"], e["tid"]) for e in doc["traceEvents"]
                  if e["ph"] == "M" and e["name"] == "thread_name"}
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X":
                assert (ev["pid"], ev["tid"]) in tracks

    def test_timestamps_scale_with_clock(self, traced_fault_run):
        device, tracer = traced_fault_run
        cycles_doc = tracer.to_chrome_trace()
        us_doc = tracer.to_chrome_trace(device.spec)
        t_cycles = max(e["ts"] + e["dur"]
                       for e in cycles_doc["traceEvents"]
                       if e["ph"] == "X")
        t_us = max(e["ts"] + e["dur"] for e in us_doc["traceEvents"]
                   if e["ph"] == "X")
        assert t_us == pytest.approx(t_cycles * 1e6 / K80_SPEC.clock_hz)
        assert us_doc["otherData"]["time_unit"] == "us"
        assert cycles_doc["otherData"]["time_unit"] == "cycles"

    def test_translation_fault_spans_from_apointer_layer(self):
        from repro.workloads import run_memcpy
        with capture() as prof:
            device = Device(memory_bytes=16 * 1024 * 1024)
            run_memcpy(device, use_apointers=True, width=4, nblocks=1,
                       warps_per_block=2, iters_per_thread=4)
        tracer = prof.traces[0]
        assert tracer is not None
        kinds = {e.kind for e in tracer.events}
        assert "translation_fault" in kinds

    def test_empty_tracer_exports_empty_trace(self):
        doc = Tracer().to_chrome_trace()
        assert doc["traceEvents"] == []
        _validate_chrome_trace(doc)
