"""merge_profiles: suite profiles from per-launch documents.

Covers the schema ``run`` section (v4+): counter summing, rate
recomputation, zero-filling of component sections from older-version
inputs, and validation of the ``run.workers`` block.
"""

import json

import pytest

from repro.gpu import Device
from repro.telemetry import capture, merge_profiles, validate_profile

V2_FIXTURE = "tests/telemetry/fixtures/profile-v2.json"


@pytest.fixture
def launch_docs():
    """Two real launch profiles from tiny distinct kernels."""
    from repro.workloads import run_memcpy
    with capture(trace=False) as prof:
        device = Device(memory_bytes=32 * 1024 * 1024)
        r = run_memcpy(device, use_apointers=True, width=4, nblocks=2,
                       warps_per_block=4, iters_per_thread=4)
        assert r.verified
        r = run_memcpy(device, use_apointers=True, width=8, nblocks=1,
                       warps_per_block=2, iters_per_thread=2)
        assert r.verified
    docs = [p.to_dict() for p in prof.profiles]
    assert len(docs) >= 2
    return docs


class TestMerge:
    def test_merged_doc_is_current_schema(self, launch_docs):
        merged = merge_profiles(launch_docs, name="memcpy suite")
        validate_profile(merged)
        assert merged["version"] == 8
        assert merged["name"] == "memcpy suite"

    def test_attribution_hidden_fraction_recomputed(self, launch_docs):
        # Give the two launches unequal hidden fractions; the merged
        # fraction must be the ratio of the summed cycles, not a sum
        # (or mean) of the per-launch ratios.
        docs = [json.loads(json.dumps(d)) for d in launch_docs]
        docs[0]["components"]["attribution"].update(
            translation_cycles=100.0, translation_hidden=90.0,
            translation_exposed=10.0, hidden_fraction=0.9, attributed=1)
        docs[1]["components"]["attribution"].update(
            translation_cycles=300.0, translation_hidden=150.0,
            translation_exposed=150.0, hidden_fraction=0.5, attributed=1)
        merged = merge_profiles(docs)
        attr = merged["components"]["attribution"]
        assert attr["translation_cycles"] == 400.0
        assert attr["hidden_fraction"] == pytest.approx(240.0 / 400.0)
        assert attr["attributed"] == 2

    def test_counters_sum(self, launch_docs):
        merged = merge_profiles(launch_docs)
        assert merged["launch"]["cycles"] == sum(
            d["launch"]["cycles"] for d in launch_docs)
        assert merged["dram"]["bytes"] == sum(
            d["dram"]["bytes"] for d in launch_docs)
        assert merged["engine"]["instructions"] == sum(
            d["engine"]["instructions"] for d in launch_docs)
        for key in merged["stalls"]:
            assert merged["stalls"][key] == sum(
                d["stalls"].get(key, 0) for d in launch_docs)

    def test_rates_recomputed_not_summed(self, launch_docs):
        merged = merge_profiles(launch_docs)
        tr = merged["components"]["translation"]
        lookups = tr["tlb_hits"] + tr["tlb_misses"]
        expected = tr["tlb_hits"] / lookups if lookups else 0.0
        assert tr["tlb_hit_rate"] == pytest.approx(expected)
        # A suite's occupancy can never exceed 100% no matter how many
        # launches are merged — it's a weighted mean, not a sum.
        assert 0.0 <= merged["dram"]["occupancy"] <= 1.0
        assert 0.0 <= merged["issue"]["slot_utilization"] <= 1.0

    def test_workers_section_round_trips(self, launch_docs):
        merged = merge_profiles(launch_docs, workers={
            "count": 3, "jobs": 4, "points": 7, "errors": 1})
        workers = merged["run"]["workers"]
        assert workers == {"count": 3, "jobs": 4, "points": 7,
                           "launches": len(launch_docs), "errors": 1}
        validate_profile(json.loads(json.dumps(merged)))

    def test_v2_inputs_zero_fill_new_components(self):
        with open(V2_FIXTURE) as f:
            doc = json.load(f)
        assert "sanitizer" not in doc["components"]
        merged = merge_profiles([doc, json.loads(json.dumps(doc))])
        validate_profile(merged)
        san = merged["components"]["sanitizer"]
        assert san["warps_watched"] == 0

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_profiles([])

    def test_invalid_input_rejected(self, launch_docs):
        broken = json.loads(json.dumps(launch_docs[0]))
        broken.pop("dram")
        with pytest.raises(ValueError):
            merge_profiles([launch_docs[0], broken])


class TestRunSectionValidation:
    def test_run_requires_v4(self):
        with open(V2_FIXTURE) as f:
            doc = json.load(f)
        doc["run"] = {"workers": {"count": 1, "jobs": 1, "points": 1,
                                  "launches": 1, "errors": 0}}
        with pytest.raises(ValueError, match="version"):
            validate_profile(doc)

    def test_missing_worker_keys_rejected(self, launch_docs):
        merged = merge_profiles(launch_docs)
        broken = json.loads(json.dumps(merged))
        broken["run"]["workers"].pop("jobs")
        with pytest.raises(ValueError, match="jobs"):
            validate_profile(broken)

    def test_per_launch_profiles_omit_run(self, launch_docs):
        for doc in launch_docs:
            assert "run" not in doc
