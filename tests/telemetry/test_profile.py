"""Telemetry layer: LaunchProfile schema, invariants, and hooks."""

import json

import pytest

from repro.core import APConfig, AVM
from repro.gpu import Device
from repro.telemetry import (
    LaunchProfile,
    MetricsRegistry,
    Profiler,
    capture,
    hooks,
    validate_profile,
)
from repro.workloads import run_memcpy
from repro.workloads.filebench import make_file_env

PAGE = 4096


@pytest.fixture
def memcpy_profile():
    """Profile a tiny apointer memcpy launch (the golden-file case)."""
    with capture() as prof:
        device = Device(memory_bytes=32 * 1024 * 1024)
        r = run_memcpy(device, use_apointers=True, width=4, nblocks=2,
                       warps_per_block=4, iters_per_thread=4)
    assert r.verified
    return prof


class TestLaunchProfileSchema:
    def test_memcpy_profile_is_schema_valid(self, memcpy_profile):
        assert memcpy_profile.profiles
        for profile in memcpy_profile.profiles:
            validate_profile(profile.to_dict())

    def test_profile_survives_json_round_trip(self, memcpy_profile):
        doc = memcpy_profile.profiles[0].to_dict()
        validate_profile(json.loads(json.dumps(doc)))

    def test_headline_counters_present(self, memcpy_profile):
        doc = memcpy_profile.longest().to_dict()
        # The acceptance counters: TLB hit rate, fault counts, per-SM
        # utilisation, DRAM bandwidth-server occupancy.
        assert "tlb_hit_rate" in doc["components"]["translation"]
        assert "minor_faults" in doc["components"]["paging"]
        assert "major_faults" in doc["components"]["paging"]
        assert doc["sms"] and all(
            0.0 <= sm["utilization"] <= 1.0 for sm in doc["sms"])
        assert 0.0 <= doc["dram"]["occupancy"] <= 1.0
        assert doc["dram"]["bandwidth_gbs"] > 0

    def test_translation_counters_counted(self, memcpy_profile):
        doc = memcpy_profile.longest().to_dict()
        tr = doc["components"]["translation"]
        assert tr["derefs"] > 0
        assert tr["links"] > 0

    def test_validate_rejects_corrupt_documents(self, memcpy_profile):
        doc = memcpy_profile.profiles[0].to_dict()
        for mutate in (
            lambda d: d.pop("dram"),
            lambda d: d["dram"].pop("occupancy"),
            lambda d: d.update(schema="something/else"),
            lambda d: d.update(version=99),
            lambda d: d["launch"].update(cycles="fast"),
            lambda d: d["components"].pop("paging"),
            lambda d: d["components"].pop("readahead"),
            lambda d: d["components"]["readahead"].pop("hit_rate"),
            lambda d: d["components"]["translation"].pop("tlb_hit_rate"),
            lambda d: d["sms"][0].pop("busy_cycles"),
        ):
            broken = json.loads(json.dumps(doc))
            mutate(broken)
            with pytest.raises(ValueError):
                validate_profile(broken)


class TestSchemaVersioning:
    FIXTURE = "tests/telemetry/fixtures/profile-v2.json"
    FIXTURE_V5 = "tests/telemetry/fixtures/profile-v5.json"
    FIXTURE_V6 = "tests/telemetry/fixtures/profile-v6.json"
    FIXTURE_V7 = "tests/telemetry/fixtures/profile-v7.json"

    def test_live_profiles_are_current_version(self, memcpy_profile):
        from repro.telemetry.profile import SCHEMA_VERSION
        doc = memcpy_profile.profiles[0].to_dict()
        assert doc["version"] == SCHEMA_VERSION == 8

    def test_v5_requires_attribution_component(self, memcpy_profile):
        doc = memcpy_profile.profiles[0].to_dict()
        attr = doc["components"]["attribution"]
        for key in ("translation_cycles", "translation_hidden",
                    "translation_exposed", "hidden_fraction",
                    "critical_path_cycles", "attributed"):
            assert key in attr
        broken = json.loads(json.dumps(doc))
        broken["components"].pop("attribution")
        with pytest.raises(ValueError, match="attribution"):
            validate_profile(broken)

    def test_v4_document_without_attribution_still_validates(
            self, memcpy_profile):
        # v4 predates components.attribution; dropping the section and
        # restamping must keep loading (ACCEPTED_VERSIONS covers 2-5).
        doc = json.loads(json.dumps(memcpy_profile.profiles[0].to_dict()))
        doc["version"] = 4
        doc["components"].pop("attribution")
        validate_profile(doc)

    def test_v3_requires_sanitizer_component(self, memcpy_profile):
        doc = memcpy_profile.profiles[0].to_dict()
        san = doc["components"]["sanitizer"]
        for key in ("warps_watched", "lockstep_violations",
                    "torn_writes", "pin_leaks"):
            assert key in san
        broken = json.loads(json.dumps(doc))
        broken["components"].pop("sanitizer")
        with pytest.raises(ValueError):
            validate_profile(broken)

    def test_archived_v2_profile_still_validates(self):
        # Regression gate for the v2 -> v3 bump: profiles written
        # before the sanitizer component existed must keep loading.
        with open(self.FIXTURE) as f:
            doc = json.load(f)
        assert doc["version"] == 2
        assert "sanitizer" not in doc["components"]
        validate_profile(doc)

    def test_v2_document_claiming_v3_is_rejected(self):
        # The fixture lacks components.sanitizer, so stamping it as v3
        # must fail: version gating is real, not cosmetic.
        with open(self.FIXTURE) as f:
            doc = json.load(f)
        doc["version"] = 3
        with pytest.raises(ValueError, match="sanitizer"):
            validate_profile(doc)

    def test_v6_requires_timeseries_component(self, memcpy_profile):
        doc = memcpy_profile.profiles[0].to_dict()
        series = doc["components"]["timeseries"]
        for key in ("enabled", "window_cycles", "windows"):
            assert key in series
        broken = json.loads(json.dumps(doc))
        broken["components"].pop("timeseries")
        with pytest.raises(ValueError, match="timeseries"):
            validate_profile(broken)

    def test_archived_v5_profile_still_validates(self):
        # Regression gate for the v5 -> v6 bump: profiles written
        # before the timeseries component existed must keep loading.
        with open(self.FIXTURE_V5) as f:
            doc = json.load(f)
        assert doc["version"] == 5
        assert "timeseries" not in doc["components"]
        validate_profile(doc)

    def test_v5_document_claiming_v6_is_rejected(self):
        with open(self.FIXTURE_V5) as f:
            doc = json.load(f)
        doc["version"] = 6
        with pytest.raises(ValueError, match="timeseries"):
            validate_profile(doc)

    def test_v7_requires_syscalls_component(self, memcpy_profile):
        doc = memcpy_profile.profiles[0].to_dict()
        sc = doc["components"]["syscalls"]
        for key in ("pread", "pwrite", "msync", "madvise", "ftruncate",
                    "blocked_cycles", "writeback_bytes"):
            assert key in sc
        broken = json.loads(json.dumps(doc))
        broken["components"].pop("syscalls")
        with pytest.raises(ValueError, match="syscalls"):
            validate_profile(broken)

    def test_archived_v6_profile_still_validates(self):
        # Regression gate for the v6 -> v7 bump: profiles written
        # before the syscalls component existed must keep loading.
        with open(self.FIXTURE_V6) as f:
            doc = json.load(f)
        assert doc["version"] == 6
        assert "syscalls" not in doc["components"]
        validate_profile(doc)

    def test_v6_document_claiming_v7_is_rejected(self):
        with open(self.FIXTURE_V6) as f:
            doc = json.load(f)
        doc["version"] = 7
        with pytest.raises(ValueError, match="syscalls"):
            validate_profile(doc)

    def test_v8_requires_spans_component(self, memcpy_profile):
        doc = memcpy_profile.profiles[0].to_dict()
        spans = doc["components"]["spans"]
        for key in ("requests", "spans", "span_cycles"):
            assert key in spans
        broken = json.loads(json.dumps(doc))
        broken["components"].pop("spans")
        with pytest.raises(ValueError, match="spans"):
            validate_profile(broken)

    def test_archived_v7_profile_still_validates(self):
        # Regression gate for the v7 -> v8 bump: profiles written
        # before the spans component existed must keep loading.
        with open(self.FIXTURE_V7) as f:
            doc = json.load(f)
        assert doc["version"] == 7
        assert "spans" not in doc["components"]
        validate_profile(doc)

    def test_v7_document_claiming_v8_is_rejected(self):
        with open(self.FIXTURE_V7) as f:
            doc = json.load(f)
        doc["version"] = 8
        with pytest.raises(ValueError, match="spans"):
            validate_profile(doc)

    def test_unknown_versions_rejected(self):
        with open(self.FIXTURE) as f:
            doc = json.load(f)
        for version in (1, 9, "2", None):
            doc["version"] = version
            with pytest.raises(ValueError, match="version"):
                validate_profile(doc)


class TestEngineInvariants:
    def test_per_sm_busy_plus_idle_sums_to_span(self, memcpy_profile):
        for profile in memcpy_profile.profiles:
            doc = profile.to_dict()
            cycles = doc["launch"]["cycles"]
            assert doc["sms"], "profiled launch must report SMs"
            for sm in doc["sms"]:
                assert sm["busy_cycles"] >= 0
                assert sm["idle_cycles"] >= 0
                assert sm["busy_cycles"] + sm["idle_cycles"] == \
                    pytest.approx(cycles)

    def test_issue_slot_utilization_bounded(self, memcpy_profile):
        for profile in memcpy_profile.profiles:
            util = profile.to_dict()["issue"]["slot_utilization"]
            assert 0.0 <= util <= 1.0

    def test_stall_reasons_nonnegative(self, memcpy_profile):
        doc = memcpy_profile.longest().to_dict()
        assert doc["stalls"], "apointer memcpy must report stalls"
        assert all(v >= 0 for v in doc["stalls"].values())
        assert "memory" in doc["stalls"]


class TestPagingProfile:
    def test_fault_counts_flow_into_profile(self):
        npages = 8
        with capture() as prof:
            device, gpufs, fid, _ = make_file_env(
                npages * PAGE, num_frames=npages + 4,
                memory_bytes=npages * PAGE + 32 * 1024 * 1024)

            def kern(ctx):
                for p in range(npages):
                    yield from gpufs.gmmap(ctx, fid, p * PAGE)
                    yield from gpufs.gmunmap(ctx, fid, p * PAGE)

            device.launch(kern, grid=1, block_threads=32)

        doc = prof.longest().to_dict()
        validate_profile(doc)
        paging = doc["components"]["paging"]
        assert paging["major_faults"] == npages
        assert doc["pcie"]["bytes"] >= npages * PAGE

    def test_deltas_are_per_launch_not_cumulative(self):
        npages = 4
        with capture() as prof:
            device, gpufs, fid, _ = make_file_env(
                npages * PAGE, num_frames=npages + 4,
                memory_bytes=npages * PAGE + 32 * 1024 * 1024)

            def kern(ctx):
                for p in range(npages):
                    yield from gpufs.gmmap(ctx, fid, p * PAGE)
                    yield from gpufs.gmunmap(ctx, fid, p * PAGE)

            device.launch(kern, grid=1, block_threads=32)
            device.launch(kern, grid=1, block_threads=32)

        first, second = prof.profiles
        # First launch takes every major fault; the second sees the
        # warm cache — the registry must report deltas, not totals.
        assert first.components["paging"]["major_faults"] == npages
        assert second.components["paging"]["major_faults"] == 0
        assert second.components["paging"]["minor_faults"] == npages


class TestRegistry:
    def test_register_is_idempotent(self):
        reg = MetricsRegistry()
        avm = AVM(APConfig())
        reg.register("translation", avm.stats)
        reg.register("translation", avm.stats)
        avm.stats.derefs += 3
        assert reg.collect()["translation"]["derefs"] == 3

    def test_multiple_instances_aggregate(self):
        reg = MetricsRegistry()
        a, b = AVM(APConfig()), AVM(APConfig())
        reg.register("translation", a.stats)
        reg.register("translation", b.stats)
        a.stats.derefs += 2
        b.stats.derefs += 5
        assert reg.collect()["translation"]["derefs"] == 7

    def test_tlb_hit_rate_derived(self):
        reg = MetricsRegistry()
        avm = AVM(APConfig())
        reg.register("translation", avm.stats)
        avm.stats.tlb_hits += 3
        avm.stats.tlb_misses += 1
        assert reg.collect()["translation"]["tlb_hit_rate"] == 0.75


class TestHooks:
    def test_no_ambient_profiler_by_default(self):
        assert hooks.current() is None

    def test_capture_nests(self):
        with capture() as outer:
            assert hooks.current() is outer
            with capture() as inner:
                assert hooks.current() is inner
            assert hooks.current() is outer
        assert hooks.current() is None

    def test_unprofiled_launch_has_no_profile(self):
        device = Device(memory_bytes=8 * 1024 * 1024)

        def kern(ctx):
            yield from ctx.compute(5)

        result = device.launch(kern, grid=1, block_threads=32)
        assert result.profile is None

    def test_explicit_profiler_without_capture(self):
        prof = Profiler(trace=False)
        device = Device(memory_bytes=8 * 1024 * 1024)

        def kern(ctx):
            yield from ctx.compute(5)

        result = device.launch(kern, grid=1, block_threads=32,
                               profiler=prof)
        assert isinstance(result.profile, LaunchProfile)
        assert prof.traces == [None]
        validate_profile(result.profile.to_dict())


class TestWrite:
    def test_write_emits_profiles_and_traces(self, memcpy_profile,
                                             tmp_path):
        written = memcpy_profile.write(tmp_path)
        profiles = [p for p in written if "profile-" in p]
        traces = [p for p in written if "trace-" in p]
        assert len(profiles) == len(memcpy_profile.profiles)
        assert traces, "traced launches must emit Chrome traces"
        for path in profiles:
            with open(path) as f:
                validate_profile(json.load(f))
