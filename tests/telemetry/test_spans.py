"""Causal request spans (repro.telemetry.spans / repro-spans).

The layers mint a request id at warp fault / syscall entry and stamp
every nested span with it; this module's job is grouping those spans
back into per-request rows, percentile tables, and the schema-v8
``components.spans`` section — all deterministic for a deterministic
trace.
"""

import json

from repro.gpu.trace import TraceEvent, Tracer
from repro.telemetry.spans import (
    PERCENTILES,
    collect_requests,
    format_spans_report,
    main,
    spans_component,
    stage_percentiles,
)


def ev(kind, start, end, req, warp=0, sm=0, detail=""):
    return TraceEvent(warp=warp, block=0, kind=kind, start=start,
                      end=end, detail=detail, sm=sm, req=req)


#: One syscall that faulted twice (nested spans share the outer id),
#: one lone translation fault, and an unstamped engine macro-op.
EVENTS = [
    ev("syscall", 0.0, 100.0, "0:1:0", warp=1),
    ev("major_fault", 10.0, 60.0, "0:1:0", warp=1),
    ev("page_in", 20.0, 50.0, "0:1:0", warp=1),
    ev("translation_fault", 5.0, 25.0, "0:2:0", warp=2),
    ev("compute", 0.0, 40.0, ""),
]


class TestCollectRequests:
    def test_groups_by_request_id(self):
        rows = collect_requests(EVENTS)
        assert [r.req for r in rows] == ["0:1:0", "0:2:0"]
        syscall, fault = rows
        assert syscall.spans == 3
        assert syscall.fanout == 2
        assert syscall.start == 0.0 and syscall.end == 100.0
        assert syscall.duration == 100.0
        assert syscall.stages == {"syscall": 100.0,
                                  "major_fault": 50.0,
                                  "page_in": 30.0}
        assert fault.spans == 1 and fault.fanout == 0

    def test_unstamped_events_ignored(self):
        assert collect_requests([ev("compute", 0.0, 10.0, "")]) == []

    def test_sorted_by_start_then_id(self):
        events = [ev("page_in", 5.0, 6.0, "0:9:0"),
                  ev("page_in", 5.0, 6.0, "0:1:0"),
                  ev("page_in", 1.0, 2.0, "0:5:0")]
        rows = collect_requests(events)
        assert [r.req for r in rows] == ["0:5:0", "0:1:0", "0:9:0"]

    def test_to_dict_round_trips_json(self):
        doc = collect_requests(EVENTS)[0].to_dict()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["fanout"] == 2 and doc["duration"] == 100.0


class TestStagePercentiles:
    def test_nearest_rank_over_per_request_totals(self):
        # Three requests spending 10/20/30 cycles in page_in: one
        # sample each (a request's spans sum before ranking).
        events = []
        for i, total in enumerate((10.0, 20.0, 30.0)):
            events.append(ev("page_in", 0.0, total / 2, f"0:{i}:0"))
            events.append(ev("page_in", 50.0, 50.0 + total / 2,
                             f"0:{i}:0"))
        table = stage_percentiles(collect_requests(events))
        row = table["page_in"]
        assert row["count"] == 3
        assert row["p50"] == 20.0
        assert row["p90"] == row["p99"] == 30.0

    def test_empty(self):
        assert stage_percentiles([]) == {}


class TestSpansComponent:
    def test_counts(self):
        comp = spans_component(EVENTS)
        assert comp == {"requests": 2, "spans": 4,
                        "span_cycles": 100.0 + 50.0 + 30.0 + 20.0}

    def test_zero_without_stamps(self):
        assert spans_component([ev("compute", 0.0, 9.0, "")]) \
            == {"requests": 0, "spans": 0, "span_cycles": 0.0}


class TestReport:
    def test_report_lists_slowest_and_percentiles(self):
        report = format_spans_report(EVENTS, top=1)
        assert "requests: 2  spans: 4" in report
        assert "0:1:0" in report            # the slowest request
        assert "0:2:0" not in report.split("per-stage")[0]
        for q in PERCENTILES:
            assert f"p{int(q * 100)}" in report
        assert "translation_fault" in report

    def test_report_without_spans_points_at_tracing(self):
        assert "--trace" in format_spans_report([])


class TestCli:
    def _write_trace(self, path):
        tracer = Tracer()
        for e in EVENTS:
            tracer.record(e.warp, e.block, e.kind, e.start, e.end,
                          e.detail, sm=e.sm, req=e.req)
        with open(path, "w") as f:
            json.dump(tracer.to_chrome_trace(), f)

    def test_no_traces_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 2
        assert "no trace files" in capsys.readouterr().err

    def test_renders_report(self, tmp_path, capsys):
        self._write_trace(tmp_path / "trace-000.json")
        assert main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "slowest" in out and "0:1:0" in out

    def test_json_dump(self, tmp_path, capsys):
        self._write_trace(tmp_path / "trace-000.json")
        assert main([str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        (path, sub), = doc.items()
        assert sub["component"]["requests"] == 2
        assert [r["req"] for r in sub["requests"]] \
            == ["0:1:0", "0:2:0"]

    def test_dropped_events_warn(self, tmp_path, capsys):
        tracer = Tracer(max_events=2)
        for e in EVENTS:
            tracer.record(e.warp, e.block, e.kind, e.start, e.end,
                          e.detail, sm=e.sm, req=e.req)
        assert tracer.dropped
        with open(tmp_path / "trace-000.json", "w") as f:
            json.dump(tracer.to_chrome_trace(), f)
        assert main([str(tmp_path)]) == 0
        assert "WARNING" in capsys.readouterr().err
