"""Cycle-window sampling: the zero-perturbation invariant, exact
integration of sampled series, streaming sinks, and exposition."""

import json

import pytest

from repro.gpu import Device
from repro.gpu.trace import COUNTER_KIND, Tracer, events_from_chrome_trace
from repro.telemetry import capture, validate_profile
from repro.telemetry.timeseries import (
    JsonlSink,
    TimeseriesSampler,
    merge_series,
    prometheus_lines,
    write_prometheus,
)
from repro.workloads import run_memcpy
from repro.workloads.filebench import make_file_env

PAGE = 4096


def _memcpy_doc(**capture_kwargs):
    with capture(trace=False, **capture_kwargs) as prof:
        device = Device(memory_bytes=32 * 1024 * 1024)
        r = run_memcpy(device, use_apointers=True, width=4, nblocks=2,
                       warps_per_block=4, iters_per_thread=4)
    assert r.verified
    return prof.profiles[0].to_dict()


class TestZeroPerturbation:
    """The tentpole invariant: sampling never moves simulated time."""

    def test_sampled_cycles_bit_identical_to_unsampled(self):
        baseline = _memcpy_doc()
        for window in (500.0, 2000.0, 1e9):
            sampled = _memcpy_doc(timeseries=True,
                                  window_cycles=window)
            assert sampled["launch"]["cycles"] \
                == baseline["launch"]["cycles"]
            assert sampled["engine"] == baseline["engine"]
            assert sampled["stalls"] == baseline["stalls"]
            assert sampled["sms"] == baseline["sms"]

    def test_sampling_marks_profile_component(self):
        doc = _memcpy_doc(timeseries=True, window_cycles=2000.0)
        series = doc["components"]["timeseries"]
        assert series["enabled"] == 1
        assert series["window_cycles"] == 2000.0
        assert series["windows"] == len(series["series"]) > 1
        validate_profile(doc)

    def test_unsampled_profile_has_zeroed_component(self):
        doc = _memcpy_doc()
        series = doc["components"]["timeseries"]
        assert series["enabled"] == 0
        assert series["series"] == []
        validate_profile(doc)


class TestSeriesIntegration:
    """Window series must integrate exactly to the profile totals."""

    @pytest.fixture(scope="class")
    def sampled(self):
        return _memcpy_doc(timeseries=True, window_cycles=1000.0)

    def test_dram_bytes_integrate_exactly(self, sampled):
        series = sampled["components"]["timeseries"]["series"]
        assert sum(w["dram_bytes"] for w in series) \
            == sampled["dram"]["bytes"]
        assert sum(w["dram_transactions"] for w in series) \
            == sampled["dram"]["transactions"]

    def test_sm_busy_integrates_exactly(self, sampled):
        series = sampled["components"]["timeseries"]["series"]
        for sm_doc in sampled["sms"]:
            sm = sm_doc["sm"]
            total = sum(w["sm_busy"][sm] for w in series)
            assert total == pytest.approx(sm_doc["busy_cycles"])

    def test_stalls_integrate_exactly(self, sampled):
        series = sampled["components"]["timeseries"]["series"]
        by_reason: dict = {}
        for w in series:
            for reason, cycles in w["stalls"].items():
                by_reason[reason] = by_reason.get(reason, 0.0) + cycles
        for reason, cycles in sampled["stalls"].items():
            assert by_reason.get(reason, 0.0) == pytest.approx(cycles)

    def test_windows_tile_the_launch(self, sampled):
        series = sampled["components"]["timeseries"]["series"]
        cycles = sampled["launch"]["cycles"]
        assert [w["window"] for w in series] \
            == list(range(len(series)))
        assert series[-1]["t1"] >= cycles
        for w in series:
            assert w["t1"] - w["t0"] == pytest.approx(1000.0)


class TestPagingCountersAndGauges:
    def test_fault_deltas_and_gauges_land_in_windows(self):
        npages = 8
        with capture(trace=False, timeseries=True,
                     window_cycles=5000.0) as prof:
            device, gpufs, fid, _ = make_file_env(
                npages * PAGE, num_frames=npages + 4,
                memory_bytes=npages * PAGE + 32 * 1024 * 1024)

            def kern(ctx):
                for p in range(npages):
                    yield from gpufs.gmmap(ctx, fid, p * PAGE)
                    yield from gpufs.gmunmap(ctx, fid, p * PAGE)

            device.launch(kern, grid=1, block_threads=32)

        doc = prof.longest().to_dict()
        series = doc["components"]["timeseries"]["series"]
        faults = sum(w["counters"].get("paging.major_faults", 0)
                     for w in series)
        assert faults == doc["components"]["paging"]["major_faults"] \
            == npages
        assert sum(w["pcie_bytes"] for w in series) \
            == doc["pcie"]["bytes"]
        gauge_names = set()
        for w in series:
            gauge_names.update(w["gauges"])
        assert "page_cache.occupancy" in gauge_names
        assert "staging.ring_utilization" in gauge_names


class TestSamplerUnit:
    def test_issue_spread_conserves_cycles_and_instructions(self):
        s = TimeseriesSampler(num_sms=1, window_cycles=100.0)
        s.issue(0, 50.0, 175.0, 8.0)       # spans windows 0, 1, 2
        s.finish(300.0)
        busy = [w["sm_busy"][0] for w in s.windows]
        assert busy == [50.0, 100.0, 25.0]
        assert sum(w["instructions"] for w in s.windows) \
            == pytest.approx(8.0)

    def test_stall_attributed_to_end_window(self):
        s = TimeseriesSampler(num_sms=1, window_cycles=100.0)
        s.advance(250.0)                   # windows 0 and 1 closed
        s.stall("barrier", end=250.0, cycles=240.0)  # began in window 0
        s.finish(300.0)
        stalls = [w["stalls"].get("barrier", 0.0) for w in s.windows]
        assert stalls == [0.0, 0.0, 240.0]

    def test_closed_windows_are_immutable(self):
        hits = []
        s = TimeseriesSampler(num_sms=1, window_cycles=100.0,
                              sink=hits.append)
        s.issue(0, 10.0, 10.0, 1.0)
        s.advance(150.0)
        assert len(hits) == 1
        flushed = json.loads(json.dumps(hits[0]))
        s.issue(0, 150.0, 10.0, 1.0)       # lands in open window 1
        s.stall("memory", end=160.0, cycles=500.0)
        s.finish(200.0)
        assert hits[0] == flushed          # window 0 never touched

    def test_max_windows_drops_and_counts(self):
        s = TimeseriesSampler(num_sms=1, window_cycles=10.0,
                              max_windows=3)
        s.finish(100.0)                    # 10 windows, cap 3
        assert len(s.windows) == 3
        assert s.dropped_windows == 7
        comp = s.to_component()
        assert comp["windows"] == 10
        assert comp["dropped_windows"] == 7

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            TimeseriesSampler(num_sms=1, window_cycles=0.0)


class TestJsonlSink:
    def test_records_stamped_and_appended(self, tmp_path):
        path = tmp_path / "series.jsonl"
        seen = []
        sink = JsonlSink(str(path), meta={"experiment": "x", "point": 3},
                         on_window=seen.append)
        sink({"window": 0, "dram_bytes": 5})
        sink({"window": 1, "dram_bytes": 7})
        sink.close()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [r["window"] for r in lines] == [0, 1]
        assert all(r["experiment"] == "x" and r["point"] == 3
                   for r in lines)
        assert seen == lines


class TestPrometheus:
    def test_exposition_format(self):
        lines = prometheus_lines(
            {"dram_bytes": 1024, "gauge.page_cache.occupancy": 0.5,
             "skip_me": "not a number"})
        assert "# TYPE repro_dram_bytes counter" in lines
        assert "repro_dram_bytes 1024" in lines
        assert "# TYPE repro_gauge_page_cache_occupancy gauge" in lines
        assert "repro_gauge_page_cache_occupancy 0.5" in lines
        assert not any("skip_me" in line for line in lines)

    def test_write_is_atomic_and_parseable(self, tmp_path):
        path = tmp_path / "live" / "metrics.prom"
        write_prometheus(str(path), {"windows": 4})
        text = path.read_text()
        assert text.endswith("\n")
        assert "repro_windows 4" in text
        assert not (tmp_path / "live" / "metrics.prom.tmp").exists()


class TestMergeSeries:
    def test_concatenates_with_launch_keys(self):
        docs = [
            {"components": {"timeseries": {
                "enabled": 1, "window_cycles": 100.0, "windows": 2,
                "dropped_windows": 0,
                "series": [{"window": 0}, {"window": 1}]}}},
            {"components": {"timeseries": {"enabled": 0,
                                           "series": []}}},
            {"components": {"timeseries": {
                "enabled": 1, "window_cycles": 50.0, "windows": 1,
                "dropped_windows": 1, "series": [{"window": 0}]}}},
        ]
        merged = merge_series(docs)
        assert merged["enabled"] == 2
        assert merged["windows"] == 3
        assert merged["dropped_windows"] == 1
        assert merged["window_cycles"] == 100.0
        assert [(w["launch"], w["window"]) for w in merged["series"]] \
            == [(0, 0), (0, 1), (2, 0)]


class TestChromeCounterRoundTrip:
    def test_counter_events_survive_export_import(self):
        tracer = Tracer()
        tracer.record_counter("timeseries.sm_busy_frac", 1000.0, 0.375)
        tracer.record_counter("gauge.page_cache.occupancy", 2000.0, 0.5)
        trace = tracer.to_chrome_trace()
        counters = [e for e in trace["traceEvents"]
                    if e.get("ph") == "C"]
        assert len(counters) == 2
        assert counters[0]["cat"] == "timeseries"
        events, dropped = events_from_chrome_trace(trace)
        assert dropped == 0
        assert [e for e in events if e.kind == COUNTER_KIND] \
            == tracer.events

    def test_sampled_traced_launch_exports_counter_tracks(self):
        with capture(trace=True, max_traces=1, timeseries=True,
                     window_cycles=1000.0) as prof:
            device = Device(memory_bytes=32 * 1024 * 1024)
            run_memcpy(device, use_apointers=True, width=4, nblocks=1,
                       warps_per_block=2, iters_per_thread=2)
        tracer = prof.traces[0]
        trace = tracer.to_chrome_trace()
        names = {e["name"] for e in trace["traceEvents"]
                 if e.get("ph") == "C"}
        assert "timeseries.sm_busy_frac" in names
        assert "timeseries.dram_bytes" in names
