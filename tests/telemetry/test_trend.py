"""Benchmark trend record: append, load, and the regression gate."""

import json

import pytest

from repro.telemetry.trend import (
    TREND_SCHEMA,
    TREND_VERSION,
    append_run,
    compare,
    current_commit,
    load_trend,
)


def metric(value, *, name="bandwidth", unit="GB/s", higher=True,
           tier1=True):
    return {"metric": name, "value": value, "unit": unit,
            "higher_is_better": higher, "tier1": tier1}


class TestAppendAndLoad:
    def test_fresh_file_created_schema_stamped(self, tmp_path):
        path = str(tmp_path / "trend.json")
        doc = append_run(path, {"table2": metric(95.0)},
                         commit="abc1234", date="2026-08-06T00:00:00Z")
        assert doc["schema"] == TREND_SCHEMA
        assert doc["version"] == TREND_VERSION
        (row,) = doc["runs"]
        assert row["commit"] == "abc1234"
        assert row["date"] == "2026-08-06T00:00:00Z"
        assert row["scale"] == "quick"
        assert row["metrics"]["table2"]["value"] == 95.0
        # And it round-trips from disk.
        assert load_trend(path) == doc

    def test_rows_append_in_order(self, tmp_path):
        path = str(tmp_path / "trend.json")
        append_run(path, {"e": metric(1.0)}, commit="a")
        doc = append_run(path, {"e": metric(2.0)}, commit="b")
        assert [r["commit"] for r in doc["runs"]] == ["a", "b"]

    def test_empty_metrics_leave_file_untouched(self, tmp_path):
        path = str(tmp_path / "trend.json")
        append_run(path, {})
        assert not (tmp_path / "trend.json").exists()

    def test_commit_defaults_to_head(self, tmp_path):
        path = str(tmp_path / "trend.json")
        doc = append_run(path, {"e": metric(1.0)})
        assert doc["runs"][0]["commit"] == current_commit() != ""

    def test_missing_file_loads_empty_document(self, tmp_path):
        doc = load_trend(str(tmp_path / "absent.json"))
        assert doc == {"schema": TREND_SCHEMA,
                       "version": TREND_VERSION, "runs": []}

    @pytest.mark.parametrize("mutate, match", [
        (lambda d: d.update(schema="other/schema"), "schema"),
        (lambda d: d.update(version=99), "version"),
        (lambda d: d.update(runs={}), "runs"),
    ])
    def test_corrupt_files_rejected(self, tmp_path, mutate, match):
        path = tmp_path / "trend.json"
        doc = {"schema": TREND_SCHEMA, "version": TREND_VERSION,
               "runs": []}
        mutate(doc)
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match=match):
            load_trend(str(path))


def two_runs(prev_value, last_value, **kw):
    return {"schema": TREND_SCHEMA, "version": TREND_VERSION, "runs": [
        {"commit": "a", "date": "d1", "scale": "quick",
         "metrics": {"exp": metric(prev_value, **kw)}},
        {"commit": "b", "date": "d2", "scale": "quick",
         "metrics": {"exp": metric(last_value, **kw)}},
    ]}


class TestCompare:
    def test_single_run_is_not_comparable(self):
        doc = {"schema": TREND_SCHEMA, "version": TREND_VERSION,
               "runs": [{"metrics": {"e": metric(1.0)}}]}
        regressions, lines = compare(doc)
        assert regressions == []
        assert "nothing to compare" in lines[0]

    def test_higher_is_better_drop_regresses(self):
        regressions, lines = compare(two_runs(100.0, 85.0))
        (reg,) = regressions
        assert reg.experiment == "exp"
        assert reg.previous == 100.0 and reg.latest == 85.0
        assert reg.change == pytest.approx(-0.15)
        assert "REGRESSION" in "\n".join(lines)
        assert "-15.0%" in reg.describe()

    def test_higher_is_better_gain_passes(self):
        regressions, _ = compare(two_runs(100.0, 120.0))
        assert regressions == []

    def test_lower_is_better_rise_regresses(self):
        regressions, _ = compare(two_runs(200.0, 260.0, higher=False))
        (reg,) = regressions
        assert reg.change == pytest.approx(0.30)

    def test_lower_is_better_drop_passes(self):
        regressions, _ = compare(two_runs(200.0, 150.0, higher=False))
        assert regressions == []

    def test_within_threshold_passes(self):
        regressions, _ = compare(two_runs(100.0, 91.0))
        assert regressions == []

    def test_threshold_is_tunable(self):
        regressions, _ = compare(two_runs(100.0, 91.0), threshold=0.05)
        assert len(regressions) == 1

    def test_non_tier1_never_gates(self):
        regressions, lines = compare(two_runs(100.0, 10.0, tier1=False))
        assert regressions == []
        assert "REGRESSION" not in "\n".join(lines)

    def test_new_metric_has_no_baseline(self):
        doc = two_runs(1.0, 1.0)
        doc["runs"][-1]["metrics"]["fresh"] = metric(5.0)
        regressions, lines = compare(doc)
        assert regressions == []
        assert any("no baseline" in line for line in lines)

    def test_renamed_metric_not_compared(self):
        doc = two_runs(100.0, 100.0)
        doc["runs"][-1]["metrics"]["exp"] = metric(1.0, name="other")
        regressions, lines = compare(doc)
        assert regressions == []
        assert any("no baseline" in line for line in lines)

    def test_added_tier1_metric_warns(self):
        doc = two_runs(1.0, 1.0)
        doc["runs"][-1]["metrics"]["fresh"] = metric(5.0)
        _, lines = compare(doc)
        assert any("WARNING" in line and "appeared" in line
                   for line in lines)

    def test_added_non_tier1_metric_does_not_warn(self):
        doc = two_runs(1.0, 1.0)
        doc["runs"][-1]["metrics"]["fresh"] = metric(5.0, tier1=False)
        _, lines = compare(doc)
        assert not any("WARNING" in line for line in lines)

    def test_removed_tier1_metric_warns(self):
        doc = two_runs(1.0, 1.0)
        doc["runs"][-2]["metrics"]["gone"] = metric(7.0)
        regressions, lines = compare(doc)
        assert regressions == []       # a vanished metric cannot gate
        removed = [line for line in lines if "removed" in line]
        assert len(removed) == 1
        assert "gone" in removed[0]
        assert "WARNING" in removed[0] and "disappeared" in removed[0]

    def test_removed_non_tier1_metric_reported_without_warning(self):
        doc = two_runs(1.0, 1.0)
        doc["runs"][-2]["metrics"]["gone"] = metric(7.0, tier1=False)
        _, lines = compare(doc)
        removed = [line for line in lines if "removed" in line]
        assert len(removed) == 1
        assert "WARNING" not in removed[0]

    def test_renamed_metric_reported_as_removed_and_appeared(self):
        doc = two_runs(100.0, 100.0)
        doc["runs"][-1]["metrics"]["exp"] = metric(1.0, name="other")
        _, lines = compare(doc)
        joined = "\n".join(lines)
        assert "removed" in joined and "no baseline" in joined

    def test_only_latest_two_rows_compared(self):
        doc = two_runs(100.0, 99.0)
        doc["runs"].insert(0, {
            "commit": "old", "date": "d0", "scale": "quick",
            "metrics": {"exp": metric(500.0)}})
        regressions, _ = compare(doc)
        assert regressions == []


class TestCliGate:
    def test_repro_attr_compare_exit_codes(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        path = str(tmp_path / "trend.json")
        append_run(path, {"exp": metric(100.0)}, commit="a")
        append_run(path, {"exp": metric(50.0)}, commit="b")
        assert main(["--compare", "--trend-file", path]) == 1
        assert "REGRESSION" in capsys.readouterr().out

        good = str(tmp_path / "good.json")
        append_run(good, {"exp": metric(100.0)}, commit="a")
        append_run(good, {"exp": metric(101.0)}, commit="b")
        assert main(["--compare", "--trend-file", good]) == 0
        assert "no tier-1 regressions" in capsys.readouterr().out

    def test_repro_attr_compare_bad_file(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        path = tmp_path / "trend.json"
        path.write_text("{\"schema\": \"nope\"}")
        assert main(["--compare", "--trend-file", str(path)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_committed_baseline_is_loadable(self):
        # The repo ships a baseline row so CI's --compare has history.
        doc = load_trend("BENCH_trend.json")
        assert doc["runs"], "committed BENCH_trend.json must hold a row"
        for rec in doc["runs"][-1]["metrics"].values():
            assert {"metric", "value", "unit", "higher_is_better",
                    "tier1"} <= set(rec)
