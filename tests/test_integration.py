"""Cross-layer integration scenarios.

These exercise the full stack — apointers over GPUfs over the simulated
GPU and host — in ways none of the per-package tests do: mixed
readers/writers, multiple files, cache thrash under pinning pressure,
and the system-wide invariants (refcount balance, data integrity after
eviction storms).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import APConfig, AVM
from repro.gpu import Device
from repro.host import HostFileSystem, O_RDWR
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig

PAGE = 4096


def build_stack(files: dict, num_frames=16, config=None, use_tlb=False):
    fs = RamFS()
    for name, data in files.items():
        fs.create(name, data)
    device = Device(memory_bytes=64 * 1024 * 1024)
    gpufs = GPUfs(device, HostFileSystem(fs),
                  GPUfsConfig(page_size=PAGE, num_frames=num_frames))
    cfg = config if config is not None else APConfig(use_tlb=use_tlb)
    avm = AVM(cfg, gpufs=gpufs)
    return device, gpufs, avm


class TestMultiFile:
    def test_two_files_interleaved(self):
        a = np.full(8 * PAGE, 0xAA, np.uint8)
        b = np.full(8 * PAGE, 0xBB, np.uint8)
        device, gpufs, avm = build_stack({"a": a, "b": b})
        fa, fb = gpufs.open("a"), gpufs.open("b")
        seen = []

        def kern(ctx):
            pa = avm.gvmmap(ctx, 8 * PAGE, fa)
            pb = avm.gvmmap(ctx, 8 * PAGE, fb)
            yield from pa.seek(ctx, ctx.lane * 4)
            yield from pb.seek(ctx, ctx.lane * 4)
            for p in range(4):
                va = yield from pa.read(ctx, "u4")
                vb = yield from pb.read(ctx, "u4")
                seen.append((va.copy(), vb.copy()))
                yield from pa.add(ctx, PAGE)
                yield from pb.add(ctx, PAGE)
            yield from pa.destroy(ctx)
            yield from pb.destroy(ctx)

        device.launch(kern, grid=1, block_threads=64)
        for va, vb in seen:
            assert np.all(va == 0xAAAAAAAA)
            assert np.all(vb == 0xBBBBBBBB)
        # One shared page table indexes both files (§V).
        keys = {e.file_id for e in gpufs.cache.table.entries()}
        assert keys == {fa, fb}

    def test_writer_and_reader_same_file(self):
        data = np.zeros(4 * PAGE, np.uint8)
        device, gpufs, avm = build_stack({"f": data})
        fid = gpufs.open("f", O_RDWR)
        seen = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 4 * PAGE, fid, write=True)
            yield from ptr.seek(ctx, ctx.lane * 4)
            if ctx.warp_id == 0:
                yield from ptr.write(ctx,
                                     ctx.global_tid.astype(np.uint32),
                                     "u4")
            yield from ctx.syncthreads()
            vals = yield from ptr.read(ctx, "u4")
            seen.append((ctx.warp_id, vals.copy()))
            yield from ptr.destroy(ctx)

        device.launch(kern, grid=1, block_threads=64)
        for wid, vals in seen:
            assert np.array_equal(vals, np.arange(32, dtype=np.uint32))


class TestThrash:
    def test_eviction_storm_preserves_data(self):
        rng = np.random.RandomState(0)
        data = rng.randint(0, 256, 64 * PAGE, np.uint8)
        device, gpufs, avm = build_stack({"f": data}, num_frames=8)
        fid = gpufs.open("f")
        bad = []

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 64 * PAGE, fid)
            for rep in range(3):
                for p in range(ctx.warp_id, 64, 8):
                    yield from ptr.seek(ctx, p * PAGE + ctx.lane * 4)
                    vals = yield from ptr.read(ctx, "u4")
                    exp = data[p * PAGE:p * PAGE + 128].view(np.uint32)
                    if not np.array_equal(vals, exp):
                        bad.append(p)
            yield from ptr.destroy(ctx)

        device.launch(kern, grid=1, block_threads=256)
        assert not bad
        assert gpufs.cache.evictions > 100
        for entry in gpufs.cache.table.entries():
            assert entry.refcount == 0

    def test_dirty_thrash_roundtrips_through_host(self):
        data = np.zeros(32 * PAGE, np.uint8)
        device, gpufs, avm = build_stack({"f": data}, num_frames=4)
        fid = gpufs.open("f", O_RDWR)

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 32 * PAGE, fid, write=True)
            # Write a signature into every page through a 4-frame cache.
            for p in range(32):
                yield from ptr.seek(ctx, p * PAGE + ctx.lane * 4)
                yield from ptr.write(
                    ctx, np.full(32, p + 1, np.uint32), "u4")
            yield from ptr.destroy(ctx)
            yield from gpufs.flush(ctx)

        device.launch(kern, grid=1, block_threads=32)
        back = gpufs.host_fs.ramfs.open("f").data
        for p in range(32):
            vals = back[p * PAGE:p * PAGE + 128].view(np.uint32)
            assert np.all(vals == p + 1), f"page {p}"
        assert gpufs.cache.writebacks >= 28


class TestRefcountInvariant:
    @given(moves=st.lists(st.integers(-3, 3), min_size=1, max_size=12))
    @settings(max_examples=15, deadline=None)
    def test_refcounts_balance_after_random_walk(self, moves):
        """Whatever walk an apointer takes, destroying it leaves every
        page unreferenced — the unlink heuristic never leaks pins."""
        data = np.zeros(16 * PAGE, np.uint8)
        device, gpufs, avm = build_stack({"f": data})
        fid = gpufs.open("f")

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 16 * PAGE, fid)
            yield from ptr.seek(ctx, 8 * PAGE + ctx.lane * 4)
            yield from ptr.read(ctx, "u4")
            page = 8
            for step in moves:
                step = max(-page, min(step, 15 - page))
                page += step
                yield from ptr.add(ctx, step * PAGE)
                yield from ptr.read(ctx, "u4")
            yield from ptr.destroy(ctx)

        device.launch(kern, grid=1, block_threads=64)
        for entry in gpufs.cache.table.entries():
            assert entry.refcount == 0

    def test_tlb_path_balances_too(self):
        data = np.zeros(16 * PAGE, np.uint8)
        cfg = APConfig(use_tlb=True, tlb_entries=16)
        device, gpufs, avm = build_stack({"f": data}, config=cfg)
        fid = gpufs.open("f")

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 16 * PAGE, fid)
            yield from ptr.seek(ctx, ctx.lane * 4)
            for p in range(16):
                yield from ptr.read(ctx, "u4")
                yield from ptr.add(ctx, PAGE if p < 15 else 0)
            yield from ptr.destroy(ctx)
            yield from ctx.syncthreads()
            if ctx.warp_in_block == 0:
                yield from avm.drain_tlb(ctx, ptr.backend)

        device.launch(kern, grid=1, block_threads=128,
                      scratchpad_bytes=cfg.tlb_bytes())
        for entry in gpufs.cache.table.entries():
            assert entry.refcount == 0


class TestEndToEndTiming:
    def test_cold_run_slower_than_warm(self):
        data = np.zeros(32 * PAGE, np.uint8)
        device, gpufs, avm = build_stack({"f": data}, num_frames=64)
        fid = gpufs.open("f")

        def kern(ctx):
            ptr = avm.gvmmap(ctx, 32 * PAGE, fid)
            for p in range(ctx.warp_id, 32, 8):
                yield from ptr.seek(ctx, p * PAGE + ctx.lane * 4)
                yield from ptr.read(ctx, "u4")
            yield from ptr.destroy(ctx)

        cold = device.launch(kern, grid=1, block_threads=256)
        warm = device.launch(kern, grid=1, block_threads=256)
        assert warm.cycles < cold.cycles / 2
