"""System-wide property tests: determinism, scaling, conservation.

These pin down properties the experiment methodology depends on —
reported overheads are only meaningful if runs are reproducible and the
model behaves sanely under scaling.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import APConfig, ImplVariant, PtrFormat
from repro.gpu import Device
from repro.workloads import run_memcpy, run_workload, workload_by_name


class TestDeterminism:
    def test_identical_runs_identical_cycles(self):
        """The simulator is fully deterministic: same inputs, same
        cycle count, bit for bit."""
        results = []
        for _ in range(2):
            device = Device(memory_bytes=64 * 1024 * 1024)
            r = run_memcpy(device, use_apointers=True, width=4,
                           nblocks=4, warps_per_block=8,
                           iters_per_thread=4)
            results.append(r.cycles)
        assert results[0] == results[1]

    def test_workload_runs_deterministic(self):
        w = workload_by_name("Reduce")
        cycles = []
        for _ in range(2):
            device = Device(memory_bytes=64 * 1024 * 1024)
            r = run_workload(w, device, use_apointers=True, nblocks=2,
                             warps_per_block=4, iters_per_thread=2)
            cycles.append(r.cycles)
        assert cycles[0] == cycles[1]

    def test_collage_runners_deterministic(self):
        from repro.collage import (CollageDataset, DatasetParams,
                                   make_problem, run_gpufs)
        ds = CollageDataset(DatasetParams(num_images=256,
                                          num_clusters=8))
        prob = make_problem(ds, blocks_x=3, blocks_y=3)
        a = run_gpufs(prob)
        b = run_gpufs(prob)
        assert a.seconds == b.seconds
        assert np.array_equal(a.choices, b.choices)


class TestScaling:
    def test_memcpy_time_scales_linearly_with_work(self):
        """Doubling the copied bytes at full occupancy ~doubles time."""
        def bw(iters):
            device = Device(memory_bytes=256 * 1024 * 1024)
            return run_memcpy(device, use_apointers=False, width=4,
                              nblocks=13, warps_per_block=32,
                              iters_per_thread=iters).cycles

        ratio = bw(16) / bw(8)
        assert 1.7 < ratio < 2.3

    def test_bigger_gpu_does_proportionally_more_work(self):
        """A GPU with twice the SMs and twice the issue rate finishes
        twice the (issue-bound) grid in the same time."""
        from repro.gpu.specs import K80_SPEC

        def run_with(spec):
            device = Device(spec=spec, memory_bytes=64 * 1024 * 1024)

            def kern(ctx):
                yield from ctx.compute(5000, chain=100)

            return device.launch(kern, grid=spec.num_sms * 2,
                                 block_threads=1024).cycles

        base = run_with(K80_SPEC)
        doubled = run_with(K80_SPEC.with_overrides(
            num_sms=26,
            issued_instructions_per_s=2 * K80_SPEC
            .issued_instructions_per_s))
        assert doubled == pytest.approx(base, rel=0.10)

    @given(st.integers(1, 6))
    @settings(max_examples=6, deadline=None)
    def test_cycles_monotonic_in_iterations(self, iters):
        w = workload_by_name("Read")
        device = Device(memory_bytes=64 * 1024 * 1024)
        short = run_workload(w, device, use_apointers=False, nblocks=1,
                             warps_per_block=2, iters_per_thread=iters)
        longer = run_workload(w, device, use_apointers=False, nblocks=1,
                              warps_per_block=2,
                              iters_per_thread=iters + 1)
        assert longer.cycles > short.cycles


class TestConservation:
    def test_instruction_counts_independent_of_occupancy(self):
        """Occupancy changes timing, never the work performed."""
        w = workload_by_name("Add")
        counts = []
        for nb in (1, 4):
            device = Device(memory_bytes=128 * 1024 * 1024)
            r = run_workload(w, device, use_apointers=True, nblocks=nb,
                             warps_per_block=4, iters_per_thread=2)
            counts.append(r.instructions / nb)
        assert counts[0] == pytest.approx(counts[1], rel=0.01)

    @pytest.mark.parametrize("fmt", [PtrFormat.LONG, PtrFormat.SHORT])
    @pytest.mark.parametrize("variant", list(ImplVariant))
    def test_every_config_copies_correctly(self, fmt, variant):
        """Timing variants must never change functional results."""
        device = Device(memory_bytes=64 * 1024 * 1024)
        r = run_memcpy(device, use_apointers=True, width=4, nblocks=2,
                       warps_per_block=4, iters_per_thread=4,
                       config=APConfig(variant=variant, fmt=fmt))
        assert r.verified
