"""Tests for the generic workload runner's bookkeeping."""

import pytest

from repro.gpu import Device
from repro.workloads import run_workload, workload_by_name
from repro.workloads.base import WorkloadRun


@pytest.fixture
def device():
    return Device(memory_bytes=64 * 1024 * 1024)


class TestRunnerOutputs:
    def test_run_reports_all_fields(self, device):
        run = run_workload(workload_by_name("Read"), device,
                           use_apointers=False, nblocks=1,
                           warps_per_block=2, iters_per_thread=2)
        assert isinstance(run, WorkloadRun)
        assert run.workload == "Read"
        assert run.cycles > 0
        assert run.seconds == pytest.approx(
            run.cycles / device.spec.clock_hz)
        assert run.dram_bytes > 0
        assert run.instructions > 0

    def test_overhead_over(self, device):
        w = workload_by_name("Read")
        base = run_workload(w, device, use_apointers=False, nblocks=1,
                            warps_per_block=2, iters_per_thread=2)
        ap = run_workload(w, device, use_apointers=True, nblocks=1,
                          warps_per_block=2, iters_per_thread=2)
        assert ap.overhead_over(base) == pytest.approx(
            ap.cycles / base.cycles - 1)

    def test_same_data_for_both_versions(self, device):
        """Baseline and apointer versions consume identical input, so a
        verification pass on one validates the other's reference."""
        w = workload_by_name("Add")
        a = run_workload(w, device, use_apointers=False, nblocks=1,
                         warps_per_block=2, iters_per_thread=2, seed=7)
        b = run_workload(w, device, use_apointers=True, nblocks=1,
                         warps_per_block=2, iters_per_thread=2, seed=7)
        assert a.verified and b.verified

    def test_seed_changes_data_not_verification(self, device):
        w = workload_by_name("Random 5")
        for seed in (1, 2, 3):
            run = run_workload(w, device, use_apointers=False, nblocks=1,
                               warps_per_block=1, iters_per_thread=1,
                               seed=seed)
            assert run.verified

    def test_apointer_issues_more_instructions(self, device):
        w = workload_by_name("Read")
        base = run_workload(w, device, use_apointers=False, nblocks=1,
                            warps_per_block=2, iters_per_thread=2)
        ap = run_workload(w, device, use_apointers=True, nblocks=1,
                          warps_per_block=2, iters_per_thread=2)
        assert ap.instructions > base.instructions * 2

    def test_register_cap_passthrough(self, device):
        w = workload_by_name("Read")
        run = run_workload(w, device, use_apointers=True, nblocks=1,
                           warps_per_block=2, iters_per_thread=2,
                           regs_per_thread=128)
        assert run.verified
