"""Tests for the page-cache benchmarks (§VI-C/D kernels)."""

import pytest

from repro.core import APConfig, PtrFormat
from repro.workloads import workload_by_name
from repro.workloads.filebench import (
    make_file_env,
    run_pagefault_bench,
    run_tlb_sweep_point,
    run_workload_file,
    warm_page_cache,
)


class TestFileEnv:
    def test_file_contents_match(self):
        device, gpufs, fid, data = make_file_env(16 * 4096)
        stored = gpufs.host_fs.ramfs.open("bench").data
        assert stored.size == 16 * 4096

    def test_warming_populates_cache(self):
        device, gpufs, fid, _ = make_file_env(16 * 4096, num_frames=32)
        warm_page_cache(device, gpufs, fid, 16)
        assert gpufs.stats.major_faults == 16
        gpufs.stats.major_faults = 0
        warm_page_cache(device, gpufs, fid, 16)
        assert gpufs.stats.major_faults == 0


class TestWorkloadFile:
    @pytest.mark.parametrize("use_aptr", [False, True])
    def test_verified(self, use_aptr):
        w = workload_by_name("Read")
        run = run_workload_file(w, use_apointers=use_aptr, nblocks=1,
                                warps_per_block=2, iters_per_thread=8)
        assert run.verified

    def test_warm_run_has_no_major_faults(self):
        w = workload_by_name("Read")
        run = run_workload_file(w, use_apointers=True, nblocks=1,
                                warps_per_block=2, iters_per_thread=8,
                                warm=True)
        assert run.verified

    def test_apointer_overhead_moderate_with_page_cache(self):
        """Figure 6c: apointer overhead over the gmmap baseline is
        bounded at high occupancy.  (The simulator's single issue-
        efficiency knob makes this larger than the paper's 16% average
        — see EXPERIMENTS.md — but the shape holds.)"""
        w = workload_by_name("Read")
        r0 = run_workload_file(w, use_apointers=False, nblocks=26,
                               warps_per_block=32, iters_per_thread=32)
        r1 = run_workload_file(w, use_apointers=True, nblocks=26,
                               warps_per_block=32, iters_per_thread=32)
        overhead = r1.overhead_over(r0)
        assert -0.10 < overhead < 1.2


class TestPageFaultBench:
    def test_major_then_minor(self):
        r = run_pagefault_bench(use_apointers=True, nblocks=2,
                                warps_per_block=4, pages_per_warp=8)
        assert r.major_faults == 2 * 4 * 8
        assert r.minor_faults >= r.major_faults  # second run is warm
        assert r.cold_cycles > r.warm_cycles

    def test_tlb_less_beats_tlb_for_minor_faults(self):
        """Table III: the best performance is achieved without the TLB."""
        kwargs = dict(nblocks=6, warps_per_block=16, pages_per_warp=16)
        no_tlb = run_pagefault_bench(
            use_apointers=True,
            config=APConfig(fmt=PtrFormat.LONG, use_tlb=False), **kwargs)
        with_tlb = run_pagefault_bench(
            use_apointers=True,
            config=APConfig(fmt=PtrFormat.LONG, use_tlb=True), **kwargs)
        assert no_tlb.warm_cycles < with_tlb.warm_cycles


class TestTLBSweep:
    def test_tlb_helps_at_high_reuse(self):
        with_tlb = run_tlb_sweep_point(unique_pages=8, tlb_entries=32,
                                       reads_per_warp=16)
        without = run_tlb_sweep_point(unique_pages=8, tlb_entries=None,
                                      reads_per_warp=16)
        assert with_tlb < without

    def test_tlb_hurts_past_capacity(self):
        """Figure 7's crossover: many unique pages thrash the TLB."""
        with_tlb = run_tlb_sweep_point(unique_pages=128, tlb_entries=16,
                                       reads_per_warp=16)
        without = run_tlb_sweep_point(unique_pages=128, tlb_entries=None,
                                      reads_per_warp=16)
        assert without < with_tlb
