"""Tests for the Table II memory-copy benchmark."""

import pytest

from repro.core import APConfig, ImplVariant
from repro.gpu import Device
from repro.workloads import run_memcpy


def small_copy(use_apointers, width, **kwargs):
    device = Device(memory_bytes=128 * 1024 * 1024)
    return run_memcpy(device, use_apointers=use_apointers, width=width,
                      nblocks=13, warps_per_block=32, iters_per_thread=8,
                      **kwargs)


class TestMemcpy:
    @pytest.mark.parametrize("width", [4, 8])
    @pytest.mark.parametrize("use_aptr", [False, True])
    def test_copy_is_correct(self, width, use_aptr):
        assert small_copy(use_aptr, width).verified

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            small_copy(False, 16)

    def test_baseline_saturates_bandwidth(self):
        r = small_copy(False, 4)
        assert r.fraction_of_peak > 0.90

    def test_8byte_apointers_near_peak(self):
        """Table II: 8-byte accesses hide the translation overhead."""
        r = small_copy(True, 8)
        assert r.fraction_of_peak > 0.85

    def test_4byte_apointers_issue_bound(self):
        """Table II: 4-byte accesses reach only ~65% of peak."""
        r = small_copy(True, 4)
        assert 0.45 < r.fraction_of_peak < 0.85

    def test_permission_checks_cost_bandwidth(self):
        plain = small_copy(True, 4)
        checked = small_copy(True, 4, perm_checks=True)
        assert checked.bandwidth < plain.bandwidth

    def test_prefetch_beats_compiler_variant(self):
        slow = small_copy(True, 4,
                          config=APConfig(variant=ImplVariant.COMPILER))
        fast = small_copy(True, 4,
                          config=APConfig(variant=ImplVariant.PREFETCH))
        assert fast.bandwidth >= slow.bandwidth
