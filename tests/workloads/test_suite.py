"""Functional tests for the §VI-B workload suite.

Every workload must produce verifiably correct results in both its
raw-pointer and apointer versions — the compute is real, not a stub.
"""

import numpy as np
import pytest

from repro.gpu import Device
from repro.workloads import WORKLOADS, run_workload, workload_by_name
from repro.workloads.suite import (
    BitonicSortWorkload,
    FFTWorkload,
    RandomWorkload,
    ReduceWorkload,
)


@pytest.fixture
def device():
    return Device(memory_bytes=64 * 1024 * 1024)


class TestSuiteShape:
    def test_eight_workloads(self):
        assert len(WORKLOADS) == 8

    def test_sorted_by_compute_intensity(self):
        ranks = [w.compute_rank for w in WORKLOADS]
        assert ranks == sorted(ranks)

    def test_lookup_by_name(self):
        assert workload_by_name("FFT").name == "FFT"
        with pytest.raises(KeyError):
            workload_by_name("nope")

    def test_only_fft_has_compiler_artifact(self):
        for w in WORKLOADS:
            if w.name == "FFT":
                assert w.apointer_artifact_instrs > 0
            else:
                assert w.apointer_artifact_instrs == 0


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
@pytest.mark.parametrize("use_aptr", [False, True],
                         ids=["raw", "apointer"])
class TestFunctionalCorrectness:
    def test_verified(self, device, workload, use_aptr):
        run = run_workload(workload, device, use_apointers=use_aptr,
                           nblocks=1, warps_per_block=2,
                           iters_per_thread=2)
        assert run.verified

    def test_verified_16byte(self, device, workload, use_aptr):
        run = run_workload(workload, device, use_apointers=use_aptr,
                           nblocks=1, warps_per_block=2,
                           iters_per_thread=2, width=16)
        assert run.verified


class TestWorkloadSemantics:
    def test_reduce_matches_warp_sums(self):
        w = ReduceWorkload()
        data = np.arange(64, dtype=np.float64).reshape(1, 64, 1)
        out = w.expected(data)
        assert np.all(out[:32] == data[0, :32, 0].sum())
        assert np.all(out[32:] == data[0, 32:, 0].sum())

    def test_fft_magnitudes_match_numpy(self, device):
        run = run_workload(FFTWorkload(), device, use_apointers=False,
                           nblocks=1, warps_per_block=1,
                           iters_per_thread=1)
        assert run.verified

    def test_bitonic_expected_is_sorted_sum(self):
        w = BitonicSortWorkload()
        rng = np.random.RandomState(0)
        data = rng.rand(1, 32, 1)
        out = w.expected(data)
        assert np.allclose(out, np.sort(data[0, :, 0]))

    def test_random_rounds_scale_compute_rank(self):
        assert (RandomWorkload(50).compute_rank
                > RandomWorkload(5).compute_rank)

    def test_invalid_width_rejected(self, device):
        with pytest.raises(ValueError):
            run_workload(WORKLOADS[0], device, use_apointers=False,
                         nblocks=1, width=8)


class TestOverheadShape:
    def test_apointer_version_is_slower(self, device):
        w = workload_by_name("Read")
        r0 = run_workload(w, device, use_apointers=False, nblocks=1,
                          warps_per_block=4, iters_per_thread=4)
        r1 = run_workload(w, device, use_apointers=True, nblocks=1,
                          warps_per_block=4, iters_per_thread=4)
        assert r1.cycles > r0.cycles

    def test_occupancy_hides_overhead(self):
        """The Figure 6 mechanism: relative overhead shrinks with more
        resident threadblocks."""
        w = workload_by_name("Read")
        overhead = {}
        for nb in (1, 26):
            device = Device(memory_bytes=256 * 1024 * 1024)
            r0 = run_workload(w, device, use_apointers=False, nblocks=nb,
                              iters_per_thread=4)
            r1 = run_workload(w, device, use_apointers=True, nblocks=nb,
                              iters_per_thread=4)
            overhead[nb] = r1.overhead_over(r0)
        assert overhead[26] < overhead[1]

    def test_wide_loads_reduce_overhead(self):
        """Figure 6b: 16-byte loads amortise the translation cost."""
        w = workload_by_name("Read")
        overhead = {}
        for width in (4, 16):
            device = Device(memory_bytes=256 * 1024 * 1024)
            r0 = run_workload(w, device, use_apointers=False, nblocks=26,
                              iters_per_thread=4, width=width)
            r1 = run_workload(w, device, use_apointers=True, nblocks=26,
                              iters_per_thread=4, width=width)
            overhead[width] = r1.overhead_over(r0)
        assert overhead[16] < overhead[4]

    def test_compute_intensity_hides_overhead(self, device):
        """Random-50 hides translation almost entirely; Read does not."""
        res = {}
        for name in ("Read", "Random 50"):
            w = workload_by_name(name)
            r0 = run_workload(w, device, use_apointers=False, nblocks=4,
                              warps_per_block=8, iters_per_thread=2)
            r1 = run_workload(w, device, use_apointers=True, nblocks=4,
                              warps_per_block=8, iters_per_thread=2)
            res[name] = r1.overhead_over(r0)
        assert res["Random 50"] < res["Read"]
