"""The three write-capable syscall workloads: each must verify
byte-exactly against its host oracle with the runtime sanitizer on,
and must surface syscall counters in the captured v7 profile."""

from repro.telemetry.profiler import capture
from repro.workloads import run_graphwalk, run_grepscan, run_kvstore


class TestKVStore:
    def test_verifies_with_sanitizer(self):
        r = run_kvstore(nwarps=4, records_per_warp=64, ops_per_warp=8,
                        sanitize=True)
        assert r.verified
        assert r.pwrites == 16
        assert r.preads == 16
        assert r.msyncs == 4
        assert r.writeback_bytes > 0

    def test_verifies_under_writeback_eviction(self):
        r = run_kvstore(nwarps=8, records_per_warp=128, ops_per_warp=16,
                        num_frames=10, sanitize=True)
        assert r.verified
        # 16 pages through 10 frames: dirty pages were evicted,
        # written back, and re-faulted.
        assert r.major_faults > 16


class TestGrepScan:
    def test_verifies_with_sanitizer(self):
        r = run_grepscan(nwarps=4, pages_per_warp=2, sanitize=True)
        assert r.verified
        assert r.preads == 4 * 2         # one per streamed page
        assert r.bytes_scanned == 4 * 2 * 4096

    def test_slot_capacity_truncation_matches_oracle(self):
        r = run_grepscan(nwarps=4, pages_per_warp=2,
                         threshold=2**31, sanitize=True)
        assert r.verified
        assert r.truncated_warps == 4


class TestGraphWalk:
    def test_verifies_with_sanitizer(self):
        r = run_graphwalk(nwarps=2, steps=8, nnodes=16 * 1024,
                          sanitize=True)
        assert r.verified
        assert r.edges == 2 * 32 * 8
        assert r.pwrites == 2

    def test_tlb_off_also_verifies(self):
        r = run_graphwalk(nwarps=2, steps=8, nnodes=16 * 1024,
                          use_tlb=False, sanitize=True)
        assert r.verified
        assert r.tlb_hits == 0 and r.tlb_misses == 0


class TestProfileIntegration:
    def test_syscall_counters_in_captured_profile(self):
        with capture(trace=False) as prof:
            r = run_kvstore(nwarps=4, records_per_warp=64,
                            ops_per_warp=8)
            assert r.verified
        doc = prof.profiles[0].to_dict()
        assert doc["version"] == 8
        sy = doc["components"]["syscalls"]
        assert sy["pread"] == 16
        assert sy["pwrite"] == 16
        assert sy["msync"] == 4
        assert sy["writeback_bytes"] > 0
